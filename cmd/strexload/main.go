// Command strexload drives a running strexd with synthetic multi-tenant
// traffic and checks the daemon's service-level claims.
//
// Two modes:
//
//	strexload -url http://HOST:PORT -smoke
//	    One cold job end to end (submit, poll, result), then an
//	    identical warm resubmission that must report generations: 0 and
//	    a byte-identical result payload — the CI gate for singleflight +
//	    shared-cache absorption. Also scrapes GET /metrics through the
//	    strict in-repo Prometheus parser, fetches one traced job's
//	    timeline and validates it as Chrome trace-event JSON, and checks
//	    GET /v1/version.
//
//	strexload -url http://HOST:PORT [-qps 500] [-duration 60s] ...
//	    Sustained open-loop load: -qps submissions per second for
//	    -duration, drawn from -clients tenants, with a -hot fraction of
//	    submissions drawn from a fixed -hotset of specs (the cacheable
//	    working set) and the rest unique cold specs. Reports client-side
//	    submit and status-poll latency percentiles, outcome counts, and
//	    the hot absorption fraction; -assert turns the claims into exit
//	    status. -json writes a BENCH_service.json artifact.
//
// The harness is a pure HTTP client: it measures the daemon exactly as
// a tenant would see it.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"strex/internal/obs"
)

type jobSpec struct {
	ClientID string `json:"client_id,omitempty"`
	Workload string `json:"workload"`
	Txns     int    `json:"txns,omitempty"`
	Seed     uint64 `json:"seed,omitempty"`
	Seeds    int    `json:"seeds,omitempty"`
	Timeline bool   `json:"timeline,omitempty"`
	Sched    string `json:"sched,omitempty"`
	Cores    int    `json:"cores,omitempty"`
}

type jobStatus struct {
	ID          string `json:"id"`
	State       string `json:"state"`
	Coalesced   bool   `json:"coalesced"`
	QueuePos    int    `json:"queue_position"`
	Generations *int   `json:"generations"`
	Error       string `json:"error"`
}

func terminal(state string) bool {
	return state == "done" || state == "failed" || state == "canceled"
}

func main() {
	url := flag.String("url", "http://127.0.0.1:8461", "strexd base URL")
	smoke := flag.Bool("smoke", false, "run the end-to-end smoke check and exit")
	qps := flag.Float64("qps", 500, "target submissions per second")
	duration := flag.Duration("duration", 60*time.Second, "load duration")
	clients := flag.Int("clients", 8, "distinct tenant ids")
	hot := flag.Float64("hot", 0.9, "fraction of submissions drawn from the hot set")
	hotset := flag.Int("hotset", 32, "distinct specs in the hot set")
	txns := flag.Int("txns", 8, "transactions per job (keep small: this is a service test, not a sim benchmark)")
	assert := flag.Bool("assert", false, "exit nonzero unless the service-level claims hold")
	minQPS := flag.Float64("min-qps", 0, "asserted sustained accepted QPS (default 0.95*qps)")
	minAbsorb := flag.Float64("min-absorb", 0.9, "asserted hot absorption fraction")
	maxPollP99 := flag.Duration("max-poll-p99", 50*time.Millisecond, "asserted status-poll p99")
	jsonPath := flag.String("json", "", "write a BENCH_service.json artifact here")
	seed := flag.Int64("seed", 1, "traffic-shape RNG seed")
	flag.Parse()

	if *smoke {
		if err := runSmoke(*url); err != nil {
			fmt.Fprintln(os.Stderr, "strexload: smoke FAIL:", err)
			os.Exit(1)
		}
		fmt.Println("strexload: smoke OK")
		return
	}
	if *minQPS == 0 {
		*minQPS = 0.95 * *qps
	}
	rep, err := runLoad(loadConfig{
		url: *url, qps: *qps, duration: *duration, clients: *clients,
		hot: *hot, hotset: *hotset, txns: *txns, seed: *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "strexload:", err)
		os.Exit(1)
	}
	rep.print(os.Stdout)
	if *jsonPath != "" {
		if err := rep.writeJSON(*jsonPath); err != nil {
			fmt.Fprintln(os.Stderr, "strexload:", err)
			os.Exit(1)
		}
	}
	if *assert {
		var fails []string
		if rep.AcceptedQPS < *minQPS {
			fails = append(fails, fmt.Sprintf("accepted QPS %.1f < %.1f", rep.AcceptedQPS, *minQPS))
		}
		if rep.Dropped > 0 {
			fails = append(fails, fmt.Sprintf("%d accepted jobs never completed", rep.Dropped))
		}
		if rep.Failed > 0 {
			fails = append(fails, fmt.Sprintf("%d jobs failed", rep.Failed))
		}
		if rep.HotAbsorption < *minAbsorb {
			fails = append(fails, fmt.Sprintf("hot absorption %.3f < %.3f", rep.HotAbsorption, *minAbsorb))
		}
		if rep.PollP99 > maxPollP99.Seconds()*1e3 {
			fails = append(fails, fmt.Sprintf("status-poll p99 %.1fms > %v", rep.PollP99, *maxPollP99))
		}
		// Client- and server-side views of HTTP p99 must agree within 2x.
		// At microsecond handler scale the client's tail is dominated by
		// its own goroutine scheduling, not the daemon, so a 25ms
		// absolute slack is allowed on top — the check still catches real
		// disagreement (unit bugs, a broken histogram) by an order of
		// magnitude.
		if srv := rep.ServerLatency.HTTP; srv.Count > 0 {
			client := rep.PollP99
			if client > 2*srv.P99 && client-srv.P99 > 25 {
				fails = append(fails, fmt.Sprintf("client HTTP p99 %.2fms vs server %.2fms: drift exceeds 2x + 25ms", client, srv.P99))
			}
		}
		if len(fails) > 0 {
			for _, f := range fails {
				fmt.Fprintln(os.Stderr, "strexload: ASSERT FAIL:", f)
			}
			os.Exit(1)
		}
		fmt.Println("strexload: all service-level assertions hold")
	}
}

// --- HTTP client helpers ---

// One host gets all the traffic, so the transport must keep enough
// idle connections to cover every concurrent submitter and poller —
// the default of 2 per host would churn a TCP connection per request
// at load, and the handshake cost would be billed to the daemon's
// latency numbers.
var httpClient = &http.Client{
	Timeout: 30 * time.Second,
	Transport: &http.Transport{
		MaxIdleConns:        512,
		MaxIdleConnsPerHost: 512,
		IdleConnTimeout:     90 * time.Second,
	},
}

func submit(url string, spec jobSpec) (jobStatus, int, error) {
	body, _ := json.Marshal(spec)
	resp, err := httpClient.Post(url+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return jobStatus{}, 0, err
	}
	defer resp.Body.Close()
	var st jobStatus
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			return jobStatus{}, resp.StatusCode, err
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return st, resp.StatusCode, nil
}

func status(url, id string) (jobStatus, error) {
	resp, err := httpClient.Get(url + "/v1/jobs/" + id)
	if err != nil {
		return jobStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return jobStatus{}, fmt.Errorf("status %s: HTTP %d", id, resp.StatusCode)
	}
	var st jobStatus
	err = json.NewDecoder(resp.Body).Decode(&st)
	return st, err
}

// resultBytes fetches the deterministic `result` member of the
// envelope, for byte comparison.
func resultBytes(url, id string) (string, int, error) {
	resp, err := httpClient.Get(url + "/v1/jobs/" + id + "/result")
	if err != nil {
		return "", 0, err
	}
	defer resp.Body.Close()
	var env map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		return "", resp.StatusCode, err
	}
	return string(env["result"]), resp.StatusCode, nil
}

func waitDone(url, id string, timeout time.Duration) (jobStatus, error) {
	deadline := time.Now().Add(timeout)
	for {
		st, err := status(url, id)
		if err != nil {
			return st, err
		}
		if terminal(st.State) {
			return st, nil
		}
		if time.Now().After(deadline) {
			return st, fmt.Errorf("job %s still %s after %v", id, st.State, timeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// --- smoke mode ---

func runSmoke(url string) error {
	resp, err := httpClient.Get(url + "/v1/healthz")
	if err != nil {
		return fmt.Errorf("healthz: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: HTTP %d", resp.StatusCode)
	}

	spec := jobSpec{ClientID: "smoke", Workload: "tatp", Txns: 24, Seed: 7, Seeds: 2, Cores: 2}
	st, code, err := submit(url, spec)
	if err != nil || code != http.StatusAccepted {
		return fmt.Errorf("cold submit: HTTP %d, err %v", code, err)
	}
	fin, err := waitDone(url, st.ID, 60*time.Second)
	if err != nil {
		return err
	}
	if fin.State != "done" {
		return fmt.Errorf("cold job state %s: %s", fin.State, fin.Error)
	}
	coldRes, code, err := resultBytes(url, st.ID)
	if err != nil || code != http.StatusOK {
		return fmt.Errorf("cold result: HTTP %d, err %v", code, err)
	}
	if coldRes == "" || coldRes == "null" {
		return fmt.Errorf("cold result empty")
	}

	// The warm resubmission is the tentpole claim: same spec, any
	// tenant, must be absorbed — zero fresh simulator executions,
	// byte-identical result.
	spec.ClientID = "smoke-warm"
	st2, code, err := submit(url, spec)
	if err != nil || code != http.StatusAccepted {
		return fmt.Errorf("warm submit: HTTP %d, err %v", code, err)
	}
	fin2, err := waitDone(url, st2.ID, 60*time.Second)
	if err != nil {
		return err
	}
	if fin2.State != "done" {
		return fmt.Errorf("warm job state %s: %s", fin2.State, fin2.Error)
	}
	if fin2.Generations == nil || *fin2.Generations != 0 {
		return fmt.Errorf("warm resubmit generations = %v, want 0", fin2.Generations)
	}
	warmRes, code, err := resultBytes(url, st2.ID)
	if err != nil || code != http.StatusOK {
		return fmt.Errorf("warm result: HTTP %d, err %v", code, err)
	}
	if warmRes != coldRes {
		return fmt.Errorf("warm result differs from cold:\n%s\nvs\n%s", warmRes, coldRes)
	}

	mresp, err := httpClient.Get(url + "/v1/metrics")
	if err != nil {
		return fmt.Errorf("metrics: %v", err)
	}
	defer mresp.Body.Close()
	var m struct {
		Counters struct {
			Completed int64 `json:"completed"`
			Absorbed  int64 `json:"absorbed"`
		} `json:"counters"`
	}
	if err := json.NewDecoder(mresp.Body).Decode(&m); err != nil {
		return fmt.Errorf("metrics: %v", err)
	}
	if m.Counters.Completed < 2 || m.Counters.Absorbed < 1 {
		return fmt.Errorf("metrics counters implausible: %+v", m.Counters)
	}
	if err := smokeProm(url); err != nil {
		return err
	}
	if err := smokeTimeline(url); err != nil {
		return err
	}
	return smokeVersion(url)
}

// smokeProm scrapes the Prometheus exposition and validates it with the
// in-repo strict parser — the format claim in docs/OBSERVABILITY.md.
func smokeProm(url string) error {
	resp, err := httpClient.Get(url + "/metrics")
	if err != nil {
		return fmt.Errorf("prometheus: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("prometheus: HTTP %d", resp.StatusCode)
	}
	fams, err := obs.ParseProm(resp.Body)
	if err != nil {
		return fmt.Errorf("prometheus exposition invalid: %v", err)
	}
	for _, name := range []string{
		"strexd_jobs_completed_total", "strexd_run_seconds", "strexd_http_request_seconds",
	} {
		if _, ok := fams[name]; !ok {
			return fmt.Errorf("prometheus exposition missing family %s", name)
		}
	}
	if v, err := fams["strexd_jobs_completed_total"].Value(); err != nil || v < 2 {
		return fmt.Errorf("strexd_jobs_completed_total = %v (err %v), want >= 2", v, err)
	}
	return nil
}

// smokeTimeline submits a traced job and validates its timeline as
// Chrome trace-event JSON with at least one complete span.
func smokeTimeline(url string) error {
	spec := jobSpec{ClientID: "smoke-trace", Workload: "tatp", Txns: 24, Seed: 11, Cores: 2, Timeline: true}
	st, code, err := submit(url, spec)
	if err != nil || code != http.StatusAccepted {
		return fmt.Errorf("traced submit: HTTP %d, err %v", code, err)
	}
	fin, err := waitDone(url, st.ID, 60*time.Second)
	if err != nil {
		return err
	}
	if fin.State != "done" {
		return fmt.Errorf("traced job state %s: %s", fin.State, fin.Error)
	}
	resp, err := httpClient.Get(url + "/v1/jobs/" + st.ID + "/timeline")
	if err != nil {
		return fmt.Errorf("timeline: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("timeline: HTTP %d", resp.StatusCode)
	}
	var trace struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&trace); err != nil {
		return fmt.Errorf("timeline is not trace-event JSON: %v", err)
	}
	spans := 0
	for _, ev := range trace.TraceEvents {
		if ev.Ph == "X" {
			spans++
		}
	}
	if spans == 0 {
		return fmt.Errorf("timeline has no complete spans (%d events)", len(trace.TraceEvents))
	}
	return nil
}

func smokeVersion(url string) error {
	resp, err := httpClient.Get(url + "/v1/version")
	if err != nil {
		return fmt.Errorf("version: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("version: HTTP %d", resp.StatusCode)
	}
	var bi obs.BuildInfo
	if err := json.NewDecoder(resp.Body).Decode(&bi); err != nil {
		return fmt.Errorf("version: %v", err)
	}
	if bi.GoVersion == "" || bi.OS == "" || bi.Arch == "" {
		return fmt.Errorf("version incomplete: %+v", bi)
	}
	return nil
}

// --- load mode ---

type loadConfig struct {
	url      string
	qps      float64
	duration time.Duration
	clients  int
	hot      float64
	hotset   int
	txns     int
	seed     int64
}

type outcome struct {
	hot         bool
	state       string
	generations int
}

type report struct {
	TargetQPS   float64 `json:"target_qps"`
	DurationSec float64 `json:"duration_sec"`
	Submitted   int64   `json:"submitted"`
	Accepted    int64   `json:"accepted"`
	Rejected    int64   `json:"rejected"` // 429 backpressure
	Errors      int64   `json:"errors"`   // transport/protocol errors
	Completed   int64   `json:"completed"`
	Failed      int64   `json:"failed"`
	Canceled    int64   `json:"canceled"`
	Dropped     int64   `json:"dropped"` // accepted but never terminal

	AcceptedQPS   float64 `json:"accepted_qps"`
	HotCompleted  int64   `json:"hot_completed"`
	HotAbsorbed   int64   `json:"hot_absorbed"`
	HotAbsorption float64 `json:"hot_absorption"`

	SubmitP50 float64 `json:"submit_p50_ms"`
	SubmitP99 float64 `json:"submit_p99_ms"`
	PollP50   float64 `json:"poll_p50_ms"`
	PollP99   float64 `json:"poll_p99_ms"`

	// Server-side latency quantiles from the daemon's own histograms
	// (GET /v1/metrics), reported next to the client-side numbers above:
	// client-observed HTTP latency should track server_latency.http up to
	// loopback overhead, which is the drift -assert checks.
	ServerLatency struct {
		QueueWait obs.QuantilesMs `json:"queue_wait"`
		Run       obs.QuantilesMs `json:"run"`
		Replicate obs.QuantilesMs `json:"replicate"`
		HTTP      obs.QuantilesMs `json:"http"`
	} `json:"server_latency"`

	// ServerBuild is the daemon's build provenance (GET /v1/version).
	ServerBuild obs.BuildInfo `json:"server_build"`
}

// fetchServerObs fills the report's server-side latency and build info;
// best-effort (an old daemon without these endpoints leaves them zero).
func (r *report) fetchServerObs(url string) {
	if resp, err := httpClient.Get(url + "/v1/metrics"); err == nil {
		var m struct {
			Latency struct {
				QueueWait obs.QuantilesMs `json:"queue_wait"`
				Run       obs.QuantilesMs `json:"run"`
				Replicate obs.QuantilesMs `json:"replicate"`
				HTTP      obs.QuantilesMs `json:"http"`
			} `json:"latency"`
		}
		if json.NewDecoder(resp.Body).Decode(&m) == nil {
			r.ServerLatency.QueueWait = m.Latency.QueueWait
			r.ServerLatency.Run = m.Latency.Run
			r.ServerLatency.Replicate = m.Latency.Replicate
			r.ServerLatency.HTTP = m.Latency.HTTP
		}
		resp.Body.Close()
	}
	if resp, err := httpClient.Get(url + "/v1/version"); err == nil {
		_ = json.NewDecoder(resp.Body).Decode(&r.ServerBuild)
		resp.Body.Close()
	}
}

func runLoad(cfg loadConfig) (*report, error) {
	if _, err := httpClient.Get(cfg.url + "/v1/healthz"); err != nil {
		return nil, fmt.Errorf("daemon unreachable: %v", err)
	}
	rep := &report{TargetQPS: cfg.qps, DurationSec: cfg.duration.Seconds()}

	var (
		mu         sync.Mutex
		submitLat  []float64
		pollLat    []float64
		outcomes   []outcome
		coldSeed   atomic.Uint64
		inflight   sync.WaitGroup
		submitters sync.WaitGroup
	)
	coldSeed.Store(1 << 32) // disjoint from the hot set's seed space
	record := func(dst *[]float64, d time.Duration) {
		mu.Lock()
		*dst = append(*dst, float64(d.Microseconds())/1e3)
		mu.Unlock()
	}

	// One spec per hot slot; cold specs draw a never-repeating seed.
	specFor := func(rng *rand.Rand) (jobSpec, bool) {
		hot := rng.Float64() < cfg.hot
		spec := jobSpec{
			ClientID: fmt.Sprintf("tenant-%d", rng.Intn(cfg.clients)),
			Workload: "tatp",
			Txns:     cfg.txns,
			Cores:    2,
		}
		if hot {
			spec.Seed = uint64(rng.Intn(cfg.hotset)) + 1
		} else {
			spec.Seed = coldSeed.Add(1)
		}
		return spec, hot
	}

	// Open-loop arrivals: a ticker paces total submissions; a pool of
	// submitter goroutines keeps slow responses from stalling the
	// arrival process (that is what makes the target rate honest).
	interval := time.Duration(float64(time.Second) / cfg.qps)
	ticks := make(chan struct{}, 1024)
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		stop := time.After(cfg.duration)
		for {
			select {
			case <-t.C:
				select {
				case ticks <- struct{}{}:
				default: // submitters saturated; the tick is lost and shows up as missed QPS
				}
			case <-stop:
				close(ticks)
				return
			}
		}
	}()

	nSub := 64
	for i := 0; i < nSub; i++ {
		submitters.Add(1)
		go func(i int) {
			defer submitters.Done()
			rng := rand.New(rand.NewSource(cfg.seed + int64(i)*7919))
			for range ticks {
				spec, isHot := specFor(rng)
				atomic.AddInt64(&rep.Submitted, 1)
				t0 := time.Now()
				st, code, err := submit(cfg.url, spec)
				record(&submitLat, time.Since(t0))
				switch {
				case err != nil:
					atomic.AddInt64(&rep.Errors, 1)
				case code == http.StatusAccepted:
					atomic.AddInt64(&rep.Accepted, 1)
					inflight.Add(1)
					go func(id string, isHot bool) {
						defer inflight.Done()
						deadline := time.Now().Add(cfg.duration + 60*time.Second)
						for {
							t0 := time.Now()
							st, err := status(cfg.url, id)
							record(&pollLat, time.Since(t0))
							if err == nil && terminal(st.State) {
								gens := 0
								if st.Generations != nil {
									gens = *st.Generations
								}
								mu.Lock()
								outcomes = append(outcomes, outcome{hot: isHot, state: st.State, generations: gens})
								mu.Unlock()
								return
							}
							if time.Now().After(deadline) {
								atomic.AddInt64(&rep.Dropped, 1)
								return
							}
							time.Sleep(25 * time.Millisecond)
						}
					}(st.ID, isHot)
				case code == http.StatusTooManyRequests:
					atomic.AddInt64(&rep.Rejected, 1)
				default:
					atomic.AddInt64(&rep.Errors, 1)
				}
			}
		}(i)
	}
	submitters.Wait()
	inflight.Wait()

	for _, o := range outcomes {
		switch o.state {
		case "done":
			rep.Completed++
			if o.hot {
				rep.HotCompleted++
				if o.generations == 0 {
					rep.HotAbsorbed++
				}
			}
		case "failed":
			rep.Failed++
		case "canceled":
			rep.Canceled++
		}
	}
	rep.AcceptedQPS = float64(rep.Accepted) / cfg.duration.Seconds()
	if rep.HotCompleted > 0 {
		rep.HotAbsorption = float64(rep.HotAbsorbed) / float64(rep.HotCompleted)
	}
	rep.SubmitP50, rep.SubmitP99 = percentiles(submitLat)
	rep.PollP50, rep.PollP99 = percentiles(pollLat)
	rep.fetchServerObs(cfg.url)
	return rep, nil
}

func percentiles(ms []float64) (p50, p99 float64) {
	if len(ms) == 0 {
		return 0, 0
	}
	sort.Float64s(ms)
	at := func(q float64) float64 {
		i := int(q * float64(len(ms)-1))
		return ms[i]
	}
	return at(0.50), at(0.99)
}

func (r *report) print(w io.Writer) {
	fmt.Fprintf(w, "strexload: %.0f QPS target for %.0fs\n", r.TargetQPS, r.DurationSec)
	fmt.Fprintf(w, "  submitted %d  accepted %d (%.1f/s)  rejected %d  errors %d\n",
		r.Submitted, r.Accepted, r.AcceptedQPS, r.Rejected, r.Errors)
	fmt.Fprintf(w, "  completed %d  failed %d  canceled %d  dropped %d\n",
		r.Completed, r.Failed, r.Canceled, r.Dropped)
	fmt.Fprintf(w, "  hot absorption %d/%d = %.3f\n", r.HotAbsorbed, r.HotCompleted, r.HotAbsorption)
	fmt.Fprintf(w, "  submit latency p50 %.2fms p99 %.2fms;  status poll p50 %.2fms p99 %.2fms\n",
		r.SubmitP50, r.SubmitP99, r.PollP50, r.PollP99)
	if r.ServerLatency.HTTP.Count > 0 {
		fmt.Fprintf(w, "  server-side http p50 %.2fms p99 %.2fms;  run p50 %.2fms p99 %.2fms;  queue-wait p99 %.2fms\n",
			r.ServerLatency.HTTP.P50, r.ServerLatency.HTTP.P99,
			r.ServerLatency.Run.P50, r.ServerLatency.Run.P99, r.ServerLatency.QueueWait.P99)
	}
}

func (r *report) writeJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
