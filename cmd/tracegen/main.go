// Command tracegen generates, persists and inspects workload traces —
// the capture half of the trace-replay methodology. It can emit any
// registered workload as a versioned .strextrace artifact (-o), print
// the header of an existing artifact without decoding it (-info),
// fully verify one (-verify: checksum, structural invariants), dump
// per-transaction summaries or raw entries, and run the Figure 2
// overlap analysis.
//
// Usage:
//
//	tracegen -workload tpcc1 -type NewOrder -n 4
//	tracegen -workload tatp -n 200 -seed 9 -o tatp.strextrace
//	tracegen -info tatp.strextrace
//	tracegen -verify tatp.strextrace
//	tracegen -workload tpce -n 10 -dump | head -50
//	tracegen -workload tpcc1 -type Payment -n 16 -overlap
//
// All failures (unknown workload or type, unreadable or corrupt files)
// exit non-zero.
package main

import (
	"flag"
	"fmt"
	"os"

	"strex/internal/bench"
	"strex/internal/codegen"
	"strex/internal/experiments"
	"strex/internal/tracefile"
	"strex/internal/workload"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}

func main() {
	wl := flag.String("workload", "tpcc1", "registry workload name or alias")
	typeName := flag.String("type", "", "generate only this transaction type")
	n := flag.Int("n", 5, "transactions to generate")
	seed := flag.Uint64("seed", 1, "generation seed")
	scale := flag.Int("scale", 0, "benchmark-specific scale knob (0 = workload default)")
	out := flag.String("o", "", "write the set to this .strextrace file")
	info := flag.String("info", "", "print the header of a .strextrace file and exit")
	verify := flag.String("verify", "", "fully verify a .strextrace file (checksum + invariants) and exit")
	dump := flag.Bool("dump", false, "dump raw trace entries")
	overlap := flag.Bool("overlap", false, "run the Figure 2 overlap analysis on the set")
	flag.Parse()

	if *info != "" {
		if err := printInfo(*info); err != nil {
			fail(err)
		}
		return
	}
	if *verify != "" {
		if err := verifyFile(*verify); err != nil {
			fail(err)
		}
		return
	}

	set, err := generate(*wl, *typeName, *n, *seed, *scale)
	if err != nil {
		fail(err)
	}

	if *out != "" {
		typeID := -1
		if *typeName != "" {
			typeID, _ = bench.TypeID(*wl, *typeName) // generate already validated it
		}
		prov := tracefile.Provenance{Workload: set.Name, Seed: *seed, Scale: *scale, TypeID: typeID}
		if err := tracefile.Save(*out, set, prov); err != nil {
			fail(err)
		}
		st, err := os.Stat(*out)
		if err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s: %d txns, %d Kinstr, %d bytes (format v%d)\n",
			*out, len(set.Txns), set.Instrs()/1000, st.Size(), tracefile.Version)
	}

	// -dump and -overlap still apply to an emitted set; the per-txn
	// summary is skipped when -o was the point of the invocation.
	if *out == "" || *dump {
		summarize(set, *dump)
	}

	if *overlap {
		series := experiments.OverlapSeries(set, 32, 100)
		sum := experiments.Summarize(series)
		fmt.Printf("overlap (Figure 2 analysis over %d intervals): >=5 caches %.0f%%, >=10 caches %.0f%%, single %.0f%%\n",
			len(series), sum.AtLeast5*100, sum.AtLeast10*100, sum.Single*100)
	}
}

// generate builds a validated set from the registry, mixed or typed.
func generate(name, typeName string, n int, seed uint64, scale int) (*workload.Set, error) {
	if typeName == "" {
		return bench.BuildSet(name, n, bench.Options{Seed: seed, Scale: scale})
	}
	typ, err := bench.TypeID(name, typeName)
	if err != nil {
		return nil, err
	}
	gen, err := bench.Build(name, bench.Options{Seed: seed, Scale: scale})
	if err != nil {
		return nil, err
	}
	set := gen.GenerateTyped(typ, n)
	if err := set.Validate(); err != nil {
		return nil, err
	}
	return set, nil
}

func summarize(set *workload.Set, dump bool) {
	fmt.Printf("workload %s: %d txns, %d Kinstr total, data %d blocks\n",
		set.Name, len(set.Txns), set.Instrs()/1000, set.DataBlocks)
	for _, tx := range set.Txns {
		fmt.Printf("txn %3d %-12s instrs=%-8d entries=%-6d iblocks=%-5d (%.1f L1-I units) loads=%d stores=%d\n",
			tx.ID, set.Types[tx.Type], tx.Trace.Instrs, tx.Trace.Len(),
			tx.Trace.UniqueIBlocks(),
			float64(tx.Trace.UniqueIBlocks())/float64(codegen.L1IUnitBlocks),
			tx.Trace.Loads, tx.Trace.Stores)
		if dump {
			for _, e := range tx.Trace.Entries {
				fmt.Printf("  %s block=%d n=%d\n", e.Kind, e.Block, e.N)
			}
		}
	}
}

// printInfo reads only the header — O(1) in the payload size.
func printInfo(path string) error {
	r, err := tracefile.Open(path)
	if err != nil {
		return err
	}
	defer r.Close()
	m := r.Meta()
	fmt.Printf("file          %s\n", path)
	fmt.Printf("format        strextrace v%d\n", m.FormatVersion)
	fmt.Printf("workload      %s (seed %d, scale %d)\n", m.Provenance.Workload, m.Provenance.Seed, m.Provenance.Scale)
	if m.Provenance.TypeID >= 0 && m.Provenance.TypeID < len(m.Types) {
		fmt.Printf("typed         %s only (type %d)\n", m.Types[m.Provenance.TypeID], m.Provenance.TypeID)
	}
	if m.Provenance.Extra != "" {
		fmt.Printf("gen params    %s\n", m.Provenance.Extra)
	}
	fmt.Printf("set           %s\n", m.SetName)
	fmt.Printf("txns          %d across %d types\n", m.Txns, len(m.Types))
	fmt.Printf("entries       %d (%d instrs, %d loads, %d stores)\n", m.Entries, m.Instrs, m.Loads, m.Stores)
	fmt.Printf("segments      %d\n", m.Segments)
	fmt.Printf("data blocks   %d\n", m.DataBlocks)
	fmt.Printf("code layout   %d functions\n", len(m.Funcs))
	return nil
}

// verifyFile decodes the whole file: CRC, header totals, and workload
// structural invariants.
func verifyFile(path string) error {
	set, m, err := tracefile.Load(path)
	if err != nil {
		return fmt.Errorf("verify %s: %w", path, err)
	}
	fmt.Printf("OK %s: %d txns, %d entries, %d instrs, checksum and invariants verified (format v%d)\n",
		path, len(set.Txns), m.Entries, m.Instrs, m.FormatVersion)
	return nil
}
