// Command tracegen generates workload traces and prints per-transaction
// summaries (and optionally raw entries) — useful for inspecting the
// synthetic instruction/data streams the simulator replays, and for the
// overlap analysis of the paper's Figure 2.
//
// Usage:
//
//	tracegen -workload tpcc1 -type NewOrder -n 4
//	tracegen -workload tpce -n 10 -dump | head -50
//	tracegen -workload tpcc1 -type Payment -n 16 -overlap
package main

import (
	"flag"
	"fmt"
	"os"

	"strex/internal/codegen"
	"strex/internal/experiments"
	"strex/internal/mapreduce"
	"strex/internal/tpcc"
	"strex/internal/tpce"
	"strex/internal/workload"
)

func main() {
	wl := flag.String("workload", "tpcc1", "workload: tpcc1, tpcc10, tpce, mapreduce")
	typeName := flag.String("type", "", "generate only this transaction type")
	n := flag.Int("n", 5, "transactions to generate")
	dump := flag.Bool("dump", false, "dump raw trace entries")
	overlap := flag.Bool("overlap", false, "run the Figure 2 overlap analysis on the set")
	seed := flag.Uint64("seed", 1, "seed")
	flag.Parse()

	var gen workload.Generator
	switch *wl {
	case "tpcc1":
		gen = tpcc.New(tpcc.Config{Warehouses: 1, Seed: *seed})
	case "tpcc10":
		gen = tpcc.New(tpcc.Config{Warehouses: 10, Seed: *seed})
	case "tpce":
		gen = tpce.New(tpce.Config{Seed: *seed})
	case "mapreduce":
		gen = mapreduce.New(mapreduce.Config{Seed: *seed})
	default:
		fmt.Fprintf(os.Stderr, "tracegen: unknown workload %q\n", *wl)
		os.Exit(1)
	}

	var set *workload.Set
	if *typeName != "" {
		typ := -1
		for i, name := range gen.TypeNames() {
			if name == *typeName {
				typ = i
			}
		}
		if typ < 0 {
			fmt.Fprintf(os.Stderr, "tracegen: unknown type %q (have %v)\n", *typeName, gen.TypeNames())
			os.Exit(1)
		}
		set = gen.GenerateTyped(typ, *n)
	} else {
		set = gen.Generate(*n)
	}

	fmt.Printf("workload %s: %d txns, %d Kinstr total, data %d blocks\n",
		set.Name, len(set.Txns), set.Instrs()/1000, set.DataBlocks)
	for _, tx := range set.Txns {
		fmt.Printf("txn %3d %-12s instrs=%-8d entries=%-6d iblocks=%-5d (%.1f L1-I units) loads=%d stores=%d\n",
			tx.ID, set.Types[tx.Type], tx.Trace.Instrs, tx.Trace.Len(),
			tx.Trace.UniqueIBlocks(),
			float64(tx.Trace.UniqueIBlocks())/float64(codegen.L1IUnitBlocks),
			tx.Trace.Loads, tx.Trace.Stores)
		if *dump {
			for _, e := range tx.Trace.Entries {
				fmt.Printf("  %s block=%d n=%d\n", e.Kind, e.Block, e.N)
			}
		}
	}

	if *overlap {
		series := experiments.OverlapSeries(set, 32, 100)
		sum := experiments.Summarize(series)
		fmt.Printf("overlap (Figure 2 analysis over %d intervals): >=5 caches %.0f%%, >=10 caches %.0f%%, single %.0f%%\n",
			len(series), sum.AtLeast5*100, sum.AtLeast10*100, sum.Single*100)
	}
}
