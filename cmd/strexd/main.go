// Command strexd is the STREX simulation-as-a-service daemon: a
// long-lived HTTP/JSON server that accepts run specifications and
// executes them on one shared worker pool behind a bounded admission
// queue with per-client round-robin fairness, coalescing identical
// in-flight submissions (singleflight) and memoizing completed runs in
// one warm content-addressed cache shared by every tenant.
//
// Usage:
//
//	strexd [-addr HOST:PORT] [-parallel N] [-queue DEPTH]
//	       [-cache-dir DIR] [-no-cache] [-retain DUR]
//	       [-max-txns N] [-max-seeds N] [-max-cores N]
//	       [-log-level LEVEL] [-log-format text|json]
//	       [-debug-addr HOST:PORT] [-quiet]
//
// The API (see docs/SERVICE.md for the full specification):
//
//	POST   /v1/jobs               submit a job (202; 429 when overloaded)
//	GET    /v1/jobs/{id}          status (incl. queue position, progress)
//	GET    /v1/jobs/{id}/result   deterministic result payload
//	GET    /v1/jobs/{id}/stream   progress as chunked JSON lines
//	GET    /v1/jobs/{id}/timeline Chrome trace-event JSON (traced jobs)
//	DELETE /v1/jobs/{id}          cancel
//	GET    /v1/metrics            QPS, queue depth, latency, cache, jobs
//	GET    /v1/version            build provenance
//	GET    /v1/healthz            liveness
//	GET    /metrics               Prometheus text exposition
//
// Structured logs (job lifecycle + HTTP access log) go to stderr;
// -log-level/-log-format tune them and -quiet silences them entirely.
// -debug-addr serves net/http/pprof and expvar on a second, typically
// loopback-only, listener (see docs/OBSERVABILITY.md).
//
// SIGINT/SIGTERM drain gracefully: new submissions are refused, queued
// jobs are settled as canceled, running jobs get -drain-timeout to
// finish before their contexts are cancelled.
//
// By default the cache lives in the user cache directory
// (os.UserCacheDir()/strex), so repeated daemon runs stay warm across
// restarts; -no-cache runs fully cold.
package main

import (
	"context"
	_ "expvar" // registers /debug/vars on DefaultServeMux, served by -debug-addr only
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux, served by -debug-addr only
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"strex/internal/obs"
	"strex/internal/runner"
	"strex/internal/service"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8461", "listen address")
	parallel := flag.Int("parallel", 0, "concurrent simulator runs (<= 0 = GOMAXPROCS)")
	queueDepth := flag.Int("queue", 1024, "admission queue depth (flights; excess submissions get 429)")
	cacheDir := flag.String("cache-dir", "", "shared trace+result cache directory (empty = user cache dir)")
	noCache := flag.Bool("no-cache", false, "run without the shared cache")
	retain := flag.Duration("retain", 2*time.Minute, "how long finished jobs stay pollable")
	memo := flag.Int("memo", 1024, "in-memory result memo entries (negative = disabled)")
	maxTxns := flag.Int("max-txns", 4096, "per-job transaction limit")
	maxSeeds := flag.Int("max-seeds", 16, "per-job replicate limit")
	maxCores := flag.Int("max-cores", 32, "per-job simulated-core limit")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "grace for running jobs on shutdown")
	logLevel := flag.String("log-level", "info", "structured log level (debug, info, warn, error)")
	logFormat := flag.String("log-format", "text", "structured log format (text, json)")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof + expvar on this address (empty = off)")
	timelineEvents := flag.Int("timeline-events", 1<<15, "run-timeline ring capacity for timeline:true jobs")
	quiet := flag.Bool("quiet", false, "suppress all log output")
	flag.Parse()

	logger := obs.NewLogger(os.Stderr, *logFormat, *logLevel)
	if *quiet {
		logger = obs.NopLogger()
	}
	logf := func(format string, args ...interface{}) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "strexd: "+format+"\n", args...)
		}
	}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "strexd:", err)
		os.Exit(1)
	}

	dir := *cacheDir
	if dir == "" && !*noCache {
		base, err := os.UserCacheDir()
		if err != nil {
			fail(fmt.Errorf("no user cache dir (%v); pass -cache-dir or -no-cache", err))
		}
		dir = filepath.Join(base, "strex")
	}
	if *noCache {
		dir = ""
	}

	srv, err := service.New(service.Config{
		Parallel:       *parallel,
		QueueDepth:     *queueDepth,
		CacheDir:       dir,
		Retain:         *retain,
		MemoSize:       *memo,
		Logger:         logger,
		TimelineEvents: *timelineEvents,
		Limits: service.Limits{
			MaxTxns:  *maxTxns,
			MaxSeeds: *maxSeeds,
			MaxCores: *maxCores,
		},
	})
	if err != nil {
		fail(err)
	}

	if *debugAddr != "" {
		// pprof and expvar register on http.DefaultServeMux; serving that
		// mux only here keeps the profiling surface off the API listener.
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fail(fmt.Errorf("debug listener: %w", err))
		}
		go func() {
			logf("debug (pprof, expvar) on http://%s", dln.Addr())
			_ = http.Serve(dln, http.DefaultServeMux)
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	cacheLabel := dir
	if cacheLabel == "" {
		cacheLabel = "(disabled)"
	}
	logf("listening on http://%s  workers=%d queue=%d cache=%s",
		ln.Addr(), runner.ResolveWorkers(*parallel), *queueDepth, cacheLabel)

	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case got := <-sig:
		logf("%v: draining (grace %v)", got, *drainTimeout)
	case err := <-errCh:
		fail(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		logf("drain incomplete: %v (running jobs were cancelled)", err)
	}
	shCtx, shCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shCancel()
	_ = hs.Shutdown(shCtx)
	logf("stopped")
}
