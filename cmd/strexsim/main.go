// Command strexsim runs one or more simulation configurations and prints
// miss rates, throughput and latency summaries.
//
// -workload accepts any name from the workload registry
// (strex.Workloads; -list prints it): tpcc1, tpcc10, tpce, tatp, voter,
// smallbank, mapreduce, synth. -scale adjusts the benchmark-specific
// size knob and the -synth-* flags dial the synthetic generator.
//
// -sched and -cores accept comma-separated lists; the cross product of
// the two runs as a grid, fanned out over -parallel worker goroutines
// (results are deterministic and ordered, so -parallel only changes
// wall-clock). A single-cell grid prints the detailed summary; a larger
// grid prints one comparison row per run.
//
// Workload generation can be cached (-cache-dir reuses generated
// traces across invocations) or bypassed entirely: -save-trace writes
// the generated workload to a .strextrace artifact and -load-trace
// replays one (see docs/TRACES.md).
//
// -seeds N runs every grid cell at N seed-replicates — replicate 0 at
// the verbatim -seed, the rest at derived seeds with fresh trace draws
// — and prints mean ±95% CI per metric instead of point estimates (see
// docs/STATS.md). The N draws are generated once and shared by every
// cell; -cache-dir additionally persists them across invocations.
//
// -timeline FILE records the run as a quantum-level Chrome trace-event
// timeline loadable at https://ui.perfetto.dev (single cell, -seeds 1;
// see docs/OBSERVABILITY.md for the event schema).
//
// -worker turns the binary into a sharding worker serving runs over
// HTTP (it announces "listening on http://..." on stderr); -workers
// host:port,... fans a grid out across such workers. Results are
// byte-identical to local execution at any fleet size (see
// docs/SHARDING.md).
//
// Usage:
//
//	strexsim -workload tpcc10 -cores 8 -sched strex -team 10
//	strexsim -workload tatp -cores 2,4,8,16 -sched base,strex,slicc -parallel 8
//	strexsim -workload tatp -cores 2,8 -sched base,strex -seeds 5
//	strexsim -workload synth -synth-units 8 -synth-types 2 -sched base,strex
//	strexsim -workload tpcc10 -save-trace tpcc10.strextrace -sched base
//	strexsim -load-trace tpcc10.strextrace -sched strex,slicc -cores 4,8
//	strexsim -workload tatp -cores 4 -sched strex -timeline run.json
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"syscall"

	"strex"
	"strex/internal/obs"
	"strex/internal/profiling"
	"strex/internal/runcache"
	"strex/internal/runner"
	"strex/internal/service"
	"strex/internal/tracefile"
)

// stderrIsTerminal reports whether stderr is a character device (a
// terminal that can render \r-overwrite progress lines).
func stderrIsTerminal() bool {
	fi, err := os.Stderr.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}

func main() {
	wl := flag.String("workload", "tpcc1", "registry workload name or alias (see -list)")
	coresList := flag.String("cores", "4", "core counts, comma-separated (e.g. 4 or 2,4,8)")
	schedList := flag.String("sched", "strex", "schedulers, comma-separated: base, strex, slicc, hybrid")
	txns := flag.Int("txns", 120, "transactions to run")
	team := flag.Int("team", 10, "STREX team size")
	policy := flag.String("policy", "LRU", "L1-I replacement policy")
	pf := flag.String("prefetch", "", "instruction prefetcher: empty, next-line, pif")
	seed := flag.Uint64("seed", 1, "workload seed")
	scale := flag.Int("scale", 0, "benchmark-specific scale knob (0 = workload default)")
	synthUnits := flag.Float64("synth-units", 0, "synth: per-type footprint in 32KB L1-I units (0 = default 4)")
	synthTypes := flag.Int("synth-types", 0, "synth: transaction type count (0 = default 4)")
	synthReuse := flag.Float64("synth-reuse", 0, "synth: shared-data reuse fraction (0 = default 0.5)")
	arrivalProc := flag.String("arrival", "", "open-loop arrival process: fixed, poisson, mmpp/bursty, diurnal (empty = closed loop; see docs/WORKLOADS.md)")
	rate := flag.Float64("rate", 0, "open-loop offered load per tenant in txns/Mcycle (<= 0 = infinite rate)")
	tenantsList := flag.String("tenants", "", "comma-separated additional workloads sharing the machine as open-loop tenants")
	seedsN := flag.Int("seeds", 1, "seed-replicates per configuration (N > 1 prints mean ±95% CI rows; see docs/STATS.md)")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "concurrent runs for grids (1 = serial)")
	quiet := flag.Bool("quiet", false, "suppress the progress line on stderr")
	list := flag.Bool("list", false, "list registered workloads and exit")
	cacheDir := flag.String("cache-dir", "", "trace cache directory: reuse generated workloads across invocations (see docs/TRACES.md)")
	noCache := flag.Bool("no-cache", false, "disable the trace cache even when -cache-dir is set")
	saveTrace := flag.String("save-trace", "", "write the workload to this .strextrace file before running")
	loadTrace := flag.String("load-trace", "", "replay this .strextrace file instead of generating (-workload/-txns/-scale ignored)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write an end-of-run heap profile to this file")
	timeline := flag.String("timeline", "", "write a Chrome trace-event run timeline to this file (single cell, -seeds 1; open in Perfetto)")
	timelineEvents := flag.Int("timeline-events", 1<<15, "run-timeline ring capacity (earliest events kept on overflow)")
	workerMode := flag.Bool("worker", false, "serve simulation runs for a sharding coordinator instead of running a grid (see docs/SHARDING.md)")
	listen := flag.String("listen", "127.0.0.1:0", "worker mode: listen address (port 0 picks an ephemeral port)")
	workersList := flag.String("workers", "", "comma-separated worker base URLs to shard grids across (host:port, from each worker's 'listening on' line)")
	logLevel := flag.String("log-level", "warn", "worker/coordinator log level: debug, info, warn, error")
	flag.Parse()

	// SIGINT/SIGTERM cancel the run context: queued runs are skipped,
	// in-flight ones stop at the engine's next poll boundary, and worker
	// mode drains and exits.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	prof, profErr := profiling.Start(*cpuprofile, *memprofile)
	if profErr != nil {
		fmt.Fprintln(os.Stderr, "strexsim:", profErr)
		os.Exit(1)
	}
	// Success paths all return from main, so the heap profile is written
	// exactly once; error paths go through fail, which only stops the
	// CPU profile (keeping the partial profile of the failing run).
	defer func() {
		if err := prof.Finish(); err != nil {
			fmt.Fprintln(os.Stderr, "strexsim:", err)
			os.Exit(1)
		}
	}()

	fail := func(err error) {
		prof.StopCPU()
		fmt.Fprintln(os.Stderr, "strexsim:", err)
		os.Exit(1)
	}

	if *list {
		printWorkloads()
		return
	}

	if *workerMode {
		var cache *runcache.Cache
		if *cacheDir != "" && !*noCache {
			var err error
			if cache, err = runcache.Open(*cacheDir); err != nil {
				fail(err)
			}
		}
		err := service.ServeWorker(ctx, *listen, service.WorkerConfig{
			Parallel: *parallel, Cache: cache, Log: obs.NewLogger(os.Stderr, "text", *logLevel),
		}, func(url string) {
			// Plain line, greppable: harnesses parse the URL out of it to
			// hand to a coordinator's -workers flag.
			fmt.Fprintf(os.Stderr, "strexsim: worker listening on %s\n", url)
		})
		if err != nil {
			fail(err)
		}
		return
	}

	var fleet *strex.Fleet
	if *workersList != "" {
		var err error
		fleet, err = strex.ConnectFleet(strings.Split(*workersList, ","), obs.NewLogger(os.Stderr, "text", *logLevel))
		if err != nil {
			fail(err)
		}
		defer fleet.Close()
	}

	if *arrivalProc != "" || *tenantsList != "" {
		// Open-loop mode: transactions arrive at generated clocks instead
		// of all at cycle 0, and the report is the latency distribution an
		// open-loop client observes. Single-draw by construction (the
		// arrival schedule is part of the scenario identity).
		if *seedsN > 1 {
			fail(fmt.Errorf("-arrival reports per-draw latency quantiles; use -seeds 1"))
		}
		if *timeline != "" || *loadTrace != "" || *saveTrace != "" {
			fail(fmt.Errorf("-arrival cannot be combined with -timeline/-load-trace/-save-trace"))
		}
		cores, err := parseInts(*coresList)
		if err != nil {
			fail(err)
		}
		kinds, err := parseScheds(*schedList)
		if err != nil {
			fail(err)
		}
		wopts := strex.WorkloadOptions{
			Txns:                *txns,
			Seed:                *seed,
			Scale:               *scale,
			SynthFootprintUnits: *synthUnits,
			SynthTypes:          *synthTypes,
			SynthDataReuse:      *synthReuse,
			CacheDir:            *cacheDir,
			NoCache:             *noCache,
		}
		runOpenLoopGrid(*wl, *tenantsList, *arrivalProc, *rate, wopts, cores, kinds, *team, *policy, *pf, *seed, fail)
		return
	}

	if *seedsN > 1 {
		// Replicated mode: every grid cell is run at N derived seeds
		// (fresh trace draws) and reported as mean ±95% CI. Fixed
		// traces can't be redrawn, so the trace flags are refused.
		if *timeline != "" {
			fail(fmt.Errorf("-timeline records one engine run; use -seeds 1"))
		}
		if *loadTrace != "" {
			fail(fmt.Errorf("-seeds needs generated workloads; it cannot replicate a fixed -load-trace"))
		}
		if *saveTrace != "" {
			fail(fmt.Errorf("-save-trace saves a single trace draw; use -seeds 1 (replicate 0 is that exact draw)"))
		}
		cores, err := parseInts(*coresList)
		if err != nil {
			fail(err)
		}
		kinds, err := parseScheds(*schedList)
		if err != nil {
			fail(err)
		}
		wopts := strex.WorkloadOptions{
			Txns:                *txns,
			Seed:                *seed,
			Scale:               *scale,
			SynthFootprintUnits: *synthUnits,
			SynthTypes:          *synthTypes,
			SynthDataReuse:      *synthReuse,
			CacheDir:            *cacheDir,
			NoCache:             *noCache,
		}
		runReplicatedGrid(ctx, fleet, *wl, wopts, cores, kinds, *seedsN, *team, *policy, *pf, *seed, *parallel, *quiet, fail)
		return
	}

	var w *strex.Workload
	var err error
	if *loadTrace != "" {
		w, err = strex.LoadWorkload(*loadTrace)
		// An old-format file is a usage problem, not corruption: say so
		// instead of surfacing a bare decode failure.
		if errors.Is(err, tracefile.ErrVersion) {
			fail(fmt.Errorf("%s: %v\n  (old trace files cannot be upgraded in place; rerun with -save-trace to produce a v%d file)",
				*loadTrace, err, tracefile.Version))
		}
	} else {
		w, err = strex.BuildWorkload(*wl, strex.WorkloadOptions{
			Txns:                *txns,
			Seed:                *seed,
			Scale:               *scale,
			SynthFootprintUnits: *synthUnits,
			SynthTypes:          *synthTypes,
			SynthDataReuse:      *synthReuse,
			CacheDir:            *cacheDir,
			NoCache:             *noCache,
		})
	}
	if err != nil {
		fail(err)
	}
	if *saveTrace != "" {
		if err := w.SaveTrace(*saveTrace); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "strexsim: saved %s (%d txns) to %s\n", w.Name(), w.Txns(), *saveTrace)
	}
	cores, err := parseInts(*coresList)
	if err != nil {
		fail(err)
	}
	kinds, err := parseScheds(*schedList)
	if err != nil {
		fail(err)
	}

	workers := runner.ResolveWorkers(*parallel)

	if *timeline != "" {
		if len(cores) != 1 || len(kinds) != 1 {
			fail(fmt.Errorf("-timeline records one engine run; pick a single -cores value and a single -sched"))
		}
		cfg := strex.DefaultConfig(cores[0])
		cfg.TeamSize = *team
		cfg.Policy = *policy
		cfg.Prefetcher = *pf
		cfg.Seed = *seed
		res, tl, err := strex.RunTraced(cfg, w, kinds[0], *timelineEvents)
		if err != nil {
			fail(err)
		}
		f, err := os.Create(*timeline)
		if err != nil {
			fail(err)
		}
		if err := tl.WriteChrome(f); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		if dropped := tl.Dropped(); dropped > 0 {
			fmt.Fprintf(os.Stderr, "strexsim: timeline ring full: kept the first %d events, dropped %d (raise -timeline-events)\n",
				tl.Len(), dropped)
		}
		fmt.Fprintf(os.Stderr, "strexsim: wrote %d timeline events to %s (open at https://ui.perfetto.dev)\n",
			tl.Len(), *timeline)
		printDetail(w, strex.RunSpec{Config: cfg, Sched: kinds[0]}, res, *policy, *pf)
		return
	}

	var specs []strex.RunSpec
	for _, c := range cores {
		for _, kind := range kinds {
			cfg := strex.DefaultConfig(c)
			cfg.TeamSize = *team
			cfg.Policy = *policy
			cfg.Prefetcher = *pf
			cfg.Seed = *seed
			specs = append(specs, strex.RunSpec{Config: cfg, Sched: kind})
		}
	}

	progress := func(done, total int) {
		fmt.Fprintf(os.Stderr, "\r\x1b[K  %d/%d runs", done, total)
	}
	if len(specs) == 1 || *quiet || !stderrIsTerminal() {
		progress = nil
	}
	results, err := strex.RunManySharded(w, specs, strex.GridOptions{
		Parallel: *parallel, Ctx: ctx, Fleet: fleet, OnProgress: progress,
	})
	if err != nil {
		fail(err)
	}
	if progress != nil {
		fmt.Fprintf(os.Stderr, "\r\x1b[K")
	}

	if len(specs) == 1 {
		printDetail(w, specs[0], results[0], *policy, *pf)
		return
	}
	fmt.Printf("workload %s (%d txns, %d Minstr), %s L1-I policy, prefetch=%q, %d workers\n\n",
		w.Name(), w.Txns(), w.Instrs()/1e6, *policy, *pf, workers)
	fmt.Printf("%-6s  %-22s  %10s  %8s  %8s  %12s  %10s\n",
		"cores", "scheduler", "Mcycles", "I-MPKI", "D-MPKI", "txn/Mcycle", "mean Mcyc")
	for i, res := range results {
		fmt.Printf("%-6d  %-22s  %10.1f  %8.2f  %8.2f  %12.2f  %10.2f\n",
			specs[i].Config.Cores, res.Scheduler, float64(res.Cycles)/1e6,
			res.IMPKI, res.DMPKI, res.ThroughputTPM, res.MeanLatency/1e6)
	}
}

func printDetail(w *strex.Workload, spec strex.RunSpec, res strex.Result, policy, pf string) {
	fmt.Printf("workload   %s (%d txns, %d Minstr)\n", w.Name(), w.Txns(), w.Instrs()/1e6)
	fmt.Printf("system     %d cores, %s L1-I policy, prefetch=%q\n", spec.Config.Cores, policy, pf)
	fmt.Printf("scheduler  %s\n", res.Scheduler)
	fmt.Printf("cycles     %d (busy %d)\n", res.Cycles, res.BusyCycles)
	fmt.Printf("I-MPKI     %.2f\n", res.IMPKI)
	fmt.Printf("D-MPKI     %.2f\n", res.DMPKI)
	fmt.Printf("throughput %.2f txn/Mcycle (steady-state)\n", res.ThroughputTPM)
	fmt.Printf("switches   %d   migrations %d\n", res.Switches, res.Migrations)
	lat := append([]uint64(nil), res.Latencies...)
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	if len(lat) > 0 {
		fmt.Printf("latency    mean %.2f Mcyc, p50 %.2f, p99 %.2f\n",
			res.MeanLatency/1e6,
			float64(lat[len(lat)/2])/1e6,
			float64(lat[len(lat)*99/100])/1e6)
	}
}

func parseScheds(list string) ([]strex.SchedulerKind, error) {
	var kinds []strex.SchedulerKind
	for _, name := range strings.Split(list, ",") {
		kind, err := strex.ParseScheduler(name)
		if err != nil {
			return nil, err
		}
		kinds = append(kinds, kind)
	}
	return kinds, nil
}

// runReplicatedGrid runs every (cores, scheduler) cell at n derived
// seeds and prints one mean ±95% CI row per cell. Workload content is
// independent of the grid axes, so the n trace draws are built exactly
// once (strex.ReplicateWorkloads) and the whole grid — every cell's
// every replicate — fans out over one worker pool (strex.RunManyDraws),
// keeping the non-replicated grid's cross-cell parallelism.
func runReplicatedGrid(ctx context.Context, fleet *strex.Fleet, wl string, wopts strex.WorkloadOptions,
	cores []int, kinds []strex.SchedulerKind,
	n, team int, policy, pf string, seed uint64, parallel int, quiet bool, fail func(error)) {
	workers := runner.ResolveWorkers(parallel)
	draws, err := strex.ReplicateWorkloads(wl, wopts, n)
	if err != nil {
		fail(err)
	}
	var specs []strex.RunSpec
	for _, c := range cores {
		for _, kind := range kinds {
			cfg := strex.DefaultConfig(c)
			cfg.TeamSize = team
			cfg.Policy = policy
			cfg.Prefetcher = pf
			cfg.Seed = seed
			specs = append(specs, strex.RunSpec{Config: cfg, Sched: kind})
		}
	}
	progress := func(done, total int) {
		fmt.Fprintf(os.Stderr, "\r\x1b[K  %d/%d replicate runs", done, total)
	}
	if quiet || !stderrIsTerminal() {
		progress = nil
	}
	// A panicking replicate re-raises out of the batch after it drains
	// fully, and deterministically: the lowest-index panic wins no
	// matter the worker count or completion order (pinned by the
	// runner's TestBatchPanicDrainDeterministic). Surface it as one
	// clean, reproducible error line rather than a goroutine dump.
	results, err := func() (rs []*strex.ReplicatedResult, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("replicate run failed: %v", r)
			}
		}()
		return strex.RunManyDrawsSharded(draws, specs, strex.GridOptions{
			Parallel: parallel, Ctx: ctx, Fleet: fleet, OnProgress: progress,
		})
	}()
	if err != nil {
		fail(err)
	}
	if progress != nil {
		fmt.Fprintf(os.Stderr, "\r\x1b[K")
	}
	fmt.Printf("workload %s (%d txns/replicate), %d seed-replicates/config, %s L1-I policy, prefetch=%q, %d workers\n\n",
		draws[0].Name(), wopts.Txns, n, policy, pf, workers)
	fmt.Printf("%-6s  %-22s  %16s  %16s  %18s  %16s\n",
		"cores", "scheduler", "I-MPKI", "D-MPKI", "txn/Mcycle", "mean Mcyc")
	for i, rr := range results {
		lat := rr.MeanLatency
		lat.Mean /= 1e6
		lat.CI95 /= 1e6
		fmt.Printf("%-6d  %-22s  %16s  %16s  %18s  %16s\n",
			specs[i].Config.Cores, rr.Results[0].Scheduler,
			rr.IMPKI.Format(2), rr.DMPKI.Format(2), rr.Throughput.Format(2), lat.Format(2))
	}
}

// runOpenLoopGrid runs the (cores × scheduler) grid open-loop: the
// primary workload plus any -tenants share the machine, each offered
// at -rate under the -arrival process, and every cell reports
// queue-wait and sojourn quantiles next to delivered throughput. All
// cells see identical arrival schedules, so differences are scheduler
// effects.
func runOpenLoopGrid(wl, tenantsCSV, process string, rate float64, wopts strex.WorkloadOptions,
	cores []int, kinds []strex.SchedulerKind, team int, policy, pf string, seed uint64, fail func(error)) {
	names := []string{wl}
	for _, t := range strings.Split(tenantsCSV, ",") {
		if t = strings.TrimSpace(t); t != "" {
			names = append(names, t)
		}
	}
	tenants := make([]strex.TenantSpec, len(names))
	for i, name := range names {
		tenants[i] = strex.TenantSpec{
			Workload: name,
			Options:  wopts,
			Arrival:  strex.ArrivalSpec{Process: process, Rate: rate},
		}
	}
	offered := "inf"
	if rate > 0 {
		offered = fmt.Sprintf("%g/Mc", rate)
	}
	if process == "" {
		process = "poisson"
	}
	fmt.Printf("open loop: %s, %s arrivals at %s per tenant, %d txns/tenant\n\n",
		strings.Join(names, "+"), process, offered, wopts.Txns)
	fmt.Printf("%-6s  %-22s  %-9s  %10s  %12s  %12s  %12s  %12s\n",
		"cores", "scheduler", "tenant", "tput/Mc", "wait p99", "sojourn p50", "sojourn p99", "sojourn p999")
	for _, c := range cores {
		for _, kind := range kinds {
			cfg := strex.DefaultConfig(c)
			cfg.TeamSize = team
			cfg.Policy = policy
			cfg.Prefetcher = pf
			cfg.Seed = seed
			res, err := strex.RunOpenLoop(cfg, tenants, kind)
			if err != nil {
				fail(err)
			}
			row := func(tenant string, tput string, tr strex.TenantResult) {
				fmt.Printf("%-6d  %-22s  %-9s  %10s  %12.0f  %12.0f  %12.0f  %12.0f\n",
					c, res.Scheduler, tenant, tput,
					tr.QueueWait.P99, tr.Sojourn.P50, tr.Sojourn.P99, tr.Sojourn.P999)
			}
			row("all", fmt.Sprintf("%.2f", res.ThroughputTPM), res.Overall)
			if len(res.Tenants) > 1 {
				for _, tr := range res.Tenants {
					row(tr.Name, "-", tr)
				}
			}
		}
	}
	fmt.Printf("\nlatencies in cycles (arrival -> first dispatch / completion), exact order-statistic quantiles\n")
}

func parseInts(list string) ([]int, error) {
	var out []int
	for _, s := range strings.Split(list, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad core count %q", s)
		}
		out = append(out, n)
	}
	return out, nil
}

// printWorkloads renders the registry for -list.
func printWorkloads() {
	fmt.Printf("%-10s  %-52s  %-5s  %s\n", "name", "aliases / scale", "types", "description")
	for _, info := range strex.Workloads() {
		fmt.Printf("%-10s  %-52s  %-5d  %s\n", info.Name,
			strings.Join(info.Aliases, ",")+" · "+info.ScaleHint,
			len(info.TxnTypes), info.Description)
	}
}
