// Command strexsim runs a single simulation configuration and prints the
// resulting miss rates, throughput and latency summary.
//
// Usage:
//
//	strexsim -workload tpcc10 -cores 8 -sched strex -team 10
//	strexsim -workload tpce -cores 16 -sched hybrid
//	strexsim -workload tpcc1 -sched base -prefetch next-line
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"strex"
)

func main() {
	wl := flag.String("workload", "tpcc1", "workload: tpcc1, tpcc10, tpce, mapreduce")
	cores := flag.Int("cores", 4, "number of cores")
	schedName := flag.String("sched", "strex", "scheduler: base, strex, slicc, hybrid")
	txns := flag.Int("txns", 120, "transactions to run")
	team := flag.Int("team", 10, "STREX team size")
	policy := flag.String("policy", "LRU", "L1-I replacement policy")
	pf := flag.String("prefetch", "", "instruction prefetcher: empty, next-line, pif")
	seed := flag.Uint64("seed", 1, "workload seed")
	flag.Parse()

	w, err := buildWorkload(*wl, *txns, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "strexsim:", err)
		os.Exit(1)
	}
	kind, err := parseSched(*schedName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "strexsim:", err)
		os.Exit(1)
	}

	cfg := strex.DefaultConfig(*cores)
	cfg.TeamSize = *team
	cfg.Policy = *policy
	cfg.Prefetcher = *pf
	cfg.Seed = *seed

	res, err := strex.Run(cfg, w, kind)
	if err != nil {
		fmt.Fprintln(os.Stderr, "strexsim:", err)
		os.Exit(1)
	}

	fmt.Printf("workload   %s (%d txns, %d Minstr)\n", w.Name(), w.Txns(), w.Instrs()/1e6)
	fmt.Printf("system     %d cores, %s L1-I policy, prefetch=%q\n", *cores, *policy, *pf)
	fmt.Printf("scheduler  %s\n", res.Scheduler)
	fmt.Printf("cycles     %d (busy %d)\n", res.Cycles, res.BusyCycles)
	fmt.Printf("I-MPKI     %.2f\n", res.IMPKI)
	fmt.Printf("D-MPKI     %.2f\n", res.DMPKI)
	fmt.Printf("throughput %.2f txn/Mcycle (steady-state)\n", res.ThroughputTPM)
	fmt.Printf("switches   %d   migrations %d\n", res.Switches, res.Migrations)
	lat := append([]uint64(nil), res.Latencies...)
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	if len(lat) > 0 {
		fmt.Printf("latency    mean %.2f Mcyc, p50 %.2f, p99 %.2f\n",
			res.MeanLatency/1e6,
			float64(lat[len(lat)/2])/1e6,
			float64(lat[len(lat)*99/100])/1e6)
	}
}

func buildWorkload(name string, txns int, seed uint64) (*strex.Workload, error) {
	switch name {
	case "tpcc1":
		return strex.TPCC(strex.TPCCConfig{Warehouses: 1, Txns: txns, Seed: seed})
	case "tpcc10":
		return strex.TPCC(strex.TPCCConfig{Warehouses: 10, Txns: txns, Seed: seed})
	case "tpce":
		return strex.TPCE(strex.TPCEConfig{Txns: txns, Seed: seed})
	case "mapreduce":
		return strex.MapReduce(strex.MapReduceConfig{Tasks: txns, Seed: seed})
	}
	return nil, fmt.Errorf("unknown workload %q (tpcc1, tpcc10, tpce, mapreduce)", name)
}

func parseSched(name string) (strex.SchedulerKind, error) {
	switch name {
	case "base", "baseline":
		return strex.SchedBaseline, nil
	case "strex":
		return strex.SchedSTREX, nil
	case "slicc":
		return strex.SchedSLICC, nil
	case "hybrid":
		return strex.SchedHybrid, nil
	}
	return 0, fmt.Errorf("unknown scheduler %q (base, strex, slicc, hybrid)", name)
}
