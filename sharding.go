package strex

// sharding.go is the facade over the coordinator/worker execution mode
// (internal/shard): ConnectFleet dials a set of `-worker` processes,
// and the *Sharded grid runners fan their cells out to that fleet while
// returning results byte-identical to the in-process ones — runs are
// pure functions of their specs, so sharding only moves the work. Runs
// the fleet cannot serve (a workload the facade cannot describe by
// generation inputs, or a dead fleet) silently execute locally. See
// docs/SHARDING.md.

import (
	"context"
	"fmt"
	"log/slog"

	"strex/internal/bench"
	"strex/internal/runner"
	"strex/internal/shard"
	"strex/internal/sim"
	"strex/internal/stats"
	"strex/internal/workload"
)

// Fleet is a connected sharding worker fleet. The zero of operation:
// a nil *Fleet is valid everywhere and means "run in process".
type Fleet struct {
	coord *shard.Coordinator
}

// FleetWorkerMetrics is one worker's dispatch accounting (re-exported
// so facade callers need not import the internal package).
type FleetWorkerMetrics = shard.WorkerMetrics

// ConnectFleet dials the worker base URLs ("host:port" or full URLs)
// and returns a fleet handle. Unreachable workers are skipped; it fails
// only when none respond. Close the fleet when the grids are done.
func ConnectFleet(urls []string, log *slog.Logger) (*Fleet, error) {
	coord, err := shard.New(urls, shard.Options{Log: log})
	if err != nil {
		return nil, err
	}
	return &Fleet{coord: coord}, nil
}

// Close stops dispatch and releases the fleet's connections. Runs still
// pending resolve locally.
func (f *Fleet) Close() {
	if f != nil && f.coord != nil {
		f.coord.Close()
	}
}

// Metrics snapshots per-worker dispatch counters.
func (f *Fleet) Metrics() []FleetWorkerMetrics {
	if f == nil || f.coord == nil {
		return nil
	}
	return f.coord.Metrics()
}

// LocalFallbacks counts runs the fleet handed back to local execution.
func (f *Fleet) LocalFallbacks() int64 {
	if f == nil || f.coord == nil {
		return 0
	}
	return f.coord.LocalFallbacks()
}

// AliveWorkers reports how many workers are currently serving.
func (f *Fleet) AliveWorkers() int {
	if f == nil || f.coord == nil {
		return 0
	}
	return f.coord.AliveWorkers()
}

// remote exposes the fleet as the executor's RemoteRunner (nil-safe).
func (f *Fleet) remote() runner.RemoteRunner {
	if f == nil || f.coord == nil {
		return nil
	}
	return f.coord
}

// GridOptions bundles the execution environment of a grid run.
type GridOptions struct {
	// Parallel bounds concurrent local simulations (<= 0: GOMAXPROCS).
	// Remote-dispatched runs do not consume local slots.
	Parallel int
	// Ctx, when non-nil, cancels the grid (queued runs are skipped,
	// running ones stop at the engine's next poll boundary).
	Ctx context.Context
	// Fleet, when non-nil, fans eligible runs out to workers.
	Fleet *Fleet
	// OnProgress, if non-nil, observes completion across the grid.
	OnProgress func(done, total int)
}

// wireRef describes this workload by its generation inputs, or reports
// it unshippable: an unregistered or alias-named provenance (trace-file
// loads), or a Synth set whose structural parameters this process never
// had (only their canonical string survives in provenance).
func (w *Workload) wireRef() (shard.SetRef, bool) {
	if w.prov.Workload == "" {
		return shard.SetRef{}, false
	}
	info, ok := bench.Lookup(w.prov.Workload)
	if !ok || info.Name != w.prov.Workload {
		return shard.SetRef{}, false
	}
	if w.syn == nil && w.prov.Extra != "" {
		return shard.SetRef{}, false
	}
	return shard.SetRef{
		Workload: w.prov.Workload,
		Seed:     w.prov.Seed,
		Scale:    w.prov.Scale,
		Txns:     len(w.set.Txns),
		TypeID:   w.prov.TypeID,
		Synth:    w.syn,
	}, true
}

// RunManySharded is RunMany with a cancellation context and an optional
// worker fleet. With opt.Fleet nil and opt.Ctx nil it is exactly
// RunMany (which delegates here).
func RunManySharded(w *Workload, specs []RunSpec, opt GridOptions) ([]Result, error) {
	if w == nil || w.set == nil || len(w.set.Txns) == 0 {
		return nil, fmt.Errorf("strex: RunMany needs a non-empty workload")
	}
	ref, shippable := w.wireRef()
	type run struct {
		spec runner.Spec
		name string
	}
	runs := make([]run, len(specs))
	for i, rs := range specs {
		simCfg, err := rs.Config.build()
		if err != nil {
			return nil, err
		}
		// Schedulers are built eagerly on this goroutine: it surfaces
		// config errors before any run starts, and the hybrid's profiling
		// pass stays off the worker pool.
		s, err := rs.Config.scheduler(rs.Sched, w, simCfg.Cores)
		if err != nil {
			return nil, err
		}
		spec := runner.Spec{
			Label:   s.Name(),
			Config:  simCfg,
			Set:     w.set,
			Sched:   func() sim.Scheduler { return s },
			SchedID: schedulerID(rs.Config, rs.Sched),
			Ctx:     opt.Ctx,
		}
		if shippable && opt.Fleet.remote() != nil {
			spec.Remote = &shard.WireSpec{
				Label:   spec.Label,
				Config:  simCfg,
				SchedID: spec.SchedID,
				Set:     ref,
			}
		}
		runs[i] = run{spec: spec, name: s.Name()}
	}
	x := runner.New(opt.Parallel)
	x.SetRemote(opt.Fleet.remote())
	if opt.OnProgress != nil {
		onProgress := opt.OnProgress
		x.OnProgress(func(done, submitted int, label string) {
			onProgress(done, len(specs))
		})
	}
	futs := make([]*runner.Future, len(runs))
	for i, r := range runs {
		futs[i] = x.Submit(r.spec)
	}
	out := make([]Result, len(runs))
	for i, f := range futs {
		res, err := f.Wait()
		if err != nil {
			return nil, err
		}
		out[i] = toResult(runs[i].name, res, len(w.set.Txns), runs[i].spec.Config.Cores)
	}
	return out, nil
}

// RunManyDrawsSharded is RunManyDraws with a cancellation context and
// an optional worker fleet. With opt.Fleet nil and opt.Ctx nil it is
// exactly RunManyDraws (which delegates here).
func RunManyDrawsSharded(draws []*Workload, specs []RunSpec, opt GridOptions) ([]*ReplicatedResult, error) {
	if len(draws) == 0 {
		return nil, fmt.Errorf("strex: RunManyDraws needs at least one workload draw")
	}
	n := len(draws)
	refs := make([]shard.SetRef, n)
	shippable := make([]bool, n)
	for rep, w := range draws {
		refs[rep], shippable[rep] = w.wireRef()
	}
	x := runner.New(opt.Parallel)
	x.SetRemote(opt.Fleet.remote())
	total := n * len(specs)
	if opt.OnProgress != nil {
		onProgress := opt.OnProgress
		x.OnProgress(func(done, submitted int, label string) {
			onProgress(done, total)
		})
	}
	type cell struct {
		simCfg sim.Config
		scheds []sim.Scheduler
		batch  *runner.Batch
	}
	cells := make([]cell, len(specs))
	for i, spec := range specs {
		simCfg, err := spec.Config.build()
		if err != nil {
			return nil, err
		}
		// Scheduler construction stays on the caller's goroutine (like
		// RunMany's eager construction): only simulations fan out.
		scheds := make([]sim.Scheduler, n)
		for rep, w := range draws {
			s, err := spec.Config.scheduler(spec.Sched, w, simCfg.Cores)
			if err != nil {
				return nil, err
			}
			scheds[rep] = s
		}
		schedID := schedulerID(spec.Config, spec.Sched)
		rs := runner.ReplicateSpec{Spec: runner.Spec{
			Label:   scheds[0].Name(),
			Config:  simCfg,
			Set:     draws[0].set,
			Sched:   func() sim.Scheduler { return scheds[0] },
			SchedID: schedID,
			Ctx:     opt.Ctx,
		}}
		rs.SetFor = func(rep int) *workload.Set { return draws[rep].set }
		rs.SchedFor = func(rep int) func() sim.Scheduler {
			s := scheds[rep]
			return func() sim.Scheduler { return s }
		}
		if opt.Fleet.remote() != nil {
			label := scheds[0].Name()
			rs.RemoteFor = func(rep int, cfg sim.Config, cacheKey string) interface{} {
				if !shippable[rep] {
					return nil
				}
				return &shard.WireSpec{
					Label:    label,
					Config:   cfg,
					SchedID:  schedID,
					Set:      refs[rep],
					CacheKey: cacheKey,
				}
			}
		}
		cells[i] = cell{simCfg: simCfg, scheds: scheds, batch: x.SubmitReplicates(rs, n)}
	}
	out := make([]*ReplicatedResult, len(cells))
	for i, c := range cells {
		rr, err := collectDraws(c.batch, c.scheds, draws, c.simCfg)
		if err != nil {
			return nil, err
		}
		out[i] = rr
	}
	return out, nil
}

// collectDraws waits for one cell's batch and aggregates it into a
// ReplicatedResult (the error-returning counterpart of draining
// Batch.Results, so a cancelled grid surfaces ctx.Err instead of
// panicking).
func collectDraws(b *runner.Batch, scheds []sim.Scheduler, draws []*Workload, simCfg sim.Config) (*ReplicatedResult, error) {
	n := len(draws)
	rr := &ReplicatedResult{
		Results: make([]Result, 0, n),
		Seeds:   make([]uint64, n),
	}
	impki := make([]float64, n)
	dmpki := make([]float64, n)
	tpm := make([]float64, n)
	lat := make([]float64, n)
	for rep := 0; rep < n; rep++ {
		res, err := b.WaitRep(rep)
		if err != nil {
			return nil, err
		}
		rr.Seeds[rep] = draws[rep].prov.Seed
		r := toResult(scheds[rep].Name(), res, len(draws[rep].set.Txns), simCfg.Cores)
		rr.Results = append(rr.Results, r)
		impki[rep], dmpki[rep], tpm[rep], lat[rep] = r.IMPKI, r.DMPKI, r.ThroughputTPM, r.MeanLatency
	}
	rr.IMPKI = summaryOf(stats.Summarize(impki))
	rr.DMPKI = summaryOf(stats.Summarize(dmpki))
	rr.Throughput = summaryOf(stats.Summarize(tpm))
	rr.MeanLatency = summaryOf(stats.Summarize(lat))
	return rr, nil
}
