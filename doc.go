// Package strex is a reproduction of "STREX: Boosting Instruction Cache
// Reuse in OLTP Workloads Through Stratified Transaction Execution"
// (Atta, Tözün, Tong, Ailamaki, Moshovos — ISCA 2013).
//
// STREX groups same-type OLTP transactions into teams on a single core
// and time-multiplexes their execution in cache-sized slices: every
// instruction block a transaction touches is tagged with the core's
// current 8-bit phaseID; the moment a transaction would evict a block
// tagged with the *current* phase — a block its teammates still need —
// it is context-switched to the back of the team queue. The lead
// transaction increments the phase whenever it resumes, so the team
// marches through the shared instruction footprint one L1-I-sized
// segment at a time, and only the lead pays the misses.
//
// The package exposes a small façade over the full simulation stack:
//
//   - build a workload from the central registry (Workloads lists
//     TPC-C, TPC-E, TATP, SmallBank, Voter, MapReduce and the Synth
//     footprint generator; see docs/WORKLOADS.md),
//   - pick a scheduler (Baseline, STREX, SLICC, Hybrid),
//   - Run it on a simulated chip multiprocessor,
//   - inspect misses, throughput and latency in the Result.
//
// The heavy machinery lives in internal/ packages: a set-associative
// cache model with pluggable replacement policies and phaseID tags, a
// NUCA L2 + directory-coherent memory system, a miniature storage
// manager (B+-trees, heap tables, locking, logging) that generates
// instruction/data traces with the code-overlap structure of Shore-MT,
// the schedulers, and drivers reproducing every table and figure of the
// paper's evaluation (see DESIGN.md and EXPERIMENTS.md).
//
// Quick start (the repo is a self-contained module, `module strex`, with
// no external dependencies — `go build ./... && go test ./...` from a
// fresh clone is the whole bootstrap; see docs/RUNNING.md):
//
//	wl, err := strex.BuildWorkload("TATP", strex.WorkloadOptions{Txns: 100, Seed: 1})
//	if err != nil { ... }
//	base, _ := strex.Run(strex.DefaultConfig(4), wl, strex.SchedBaseline)
//	fast, _ := strex.Run(strex.DefaultConfig(4), wl, strex.SchedSTREX)
//	fmt.Printf("I-MPKI %.1f -> %.1f\n", base.IMPKI, fast.IMPKI)
//
// Any registered workload name or alias works — strex.Workloads()
// enumerates them with descriptions and expectations, and the typed
// shorthands (TPCC, TPCE, MapReduce) remain for the paper's originals.
//
// Independent runs fan out over a bounded worker pool without changing
// any result (every run is deterministic and isolated; see
// internal/runner):
//
//	specs := []strex.RunSpec{
//	    {Config: strex.DefaultConfig(4), Sched: strex.SchedBaseline},
//	    {Config: strex.DefaultConfig(4), Sched: strex.SchedSTREX},
//	    {Config: strex.DefaultConfig(8), Sched: strex.SchedSLICC},
//	}
//	results, _ := strex.RunMany(wl, specs, 0 /* GOMAXPROCS */, nil)
//
// The cmd/experiments and cmd/strexsim binaries expose the same knob as
// -parallel. Scale note: the paper replays 1.2B-instruction samples per
// configuration; the default experiment scale (Txns=160) replays tens of
// millions of instructions per configuration so the full grid finishes
// in minutes — raise -txns for higher-fidelity numbers.
//
// Workloads persist: SaveTrace/LoadWorkload round-trip a workload
// through a versioned, checksummed .strextrace artifact, and
// WorkloadOptions.CacheDir memoizes generation in a content-addressed
// on-disk store (internal/tracefile, internal/runcache). The CLIs
// expose the same machinery as -save-trace/-load-trace/-cache-dir, and
// cmd/experiments additionally memoizes run results, so a warm rerun
// performs zero workload generations while emitting byte-identical
// tables — see docs/TRACES.md for the file format, cache layout and
// invalidation rules, and docs/RUNNING.md for the caching workflow.
//
// The simulator itself runs on an event-driven execution core:
// heap-scheduled cores, scheduler capability masks and an L1-hit
// fast path, byte-identical to the retained reference interpreter at
// every seed — docs/ENGINE.md gives the design and the exactness
// argument.
//
// Single runs are point estimates of a single trace draw. RunReplicated
// re-draws the workload at N derived seeds and reports mean ±95%
// confidence intervals per metric (Student-t, internal/stats), which is
// what makes a "STREX beats Base" claim statistically defensible:
//
//	rr, _ := strex.RunReplicated(strex.DefaultConfig(4), "TATP",
//	    strex.WorkloadOptions{Txns: 100, Seed: 1}, strex.SchedSTREX, 5, 0)
//	fmt.Printf("I-MPKI %.1f ±%.1f over %d seeds\n", rr.IMPKI.Mean, rr.IMPKI.CI95, rr.IMPKI.N)
//
// Both CLIs expose the same replication as -seeds N (aggregate tables
// next to the classic seed-0 ones); docs/STATS.md covers the estimator
// choices, the confidence-interval formula and how replicates are
// addressed in the run cache.
//
// Closed-loop runs (everything above) make every transaction eligible
// at cycle 0 and measure throughput. RunOpenLoop instead offers
// transactions at clocks drawn from a seed-deterministic arrival
// process (fixed, poisson, mmpp/bursty, diurnal — internal/arrival)
// and reports the latencies an open-loop client observes: per-tenant
// queue-wait and sojourn p50/p99/p999. Multiple TenantSpec entries
// share the machine as a multi-tenant mix with disjoint address
// spaces; an infinite-rate single tenant reproduces Run bit for bit
// (the differential gate in the tests pins it). The CLIs expose the
// same knobs as -arrival/-rate/-tenants, and the openloop experiment
// family publishes the curated scenario grid — see docs/WORKLOADS.md
// and docs/RUNNING.md.
//
// For long-lived use, cmd/strexd serves the whole stack over HTTP/JSON
// (internal/service): jobs from every tenant share one bounded runner
// pool (NewPool/Pool.RunDrawsCtx, the context-aware facade over
// internal/runner) and one warm cache, identical in-flight submissions
// coalesce into a single run, and admission is round-robin over
// clients with 429 backpressure past the queue bound — all safe
// because a run is a pure function of its spec. cmd/strexload drives
// and verifies a running daemon; docs/SERVICE.md has the API
// specification and operational notes.
//
// Grids also shard across processes and machines: the same purity
// argument lets a coordinator (internal/shard, ConnectFleet +
// RunManySharded/RunManyDrawsSharded here) partition a grid by cache
// key over HTTP workers (-worker mode of cmd/experiments and
// cmd/strexsim), work-steal stragglers, and resubmit after worker
// death, with stdout and BENCH output byte-identical to the serial
// run at any fleet size — docs/SHARDING.md has the topology, wire
// surface and failure model.
package strex
