// Quickstart: run the same TPC-C workload under conventional execution
// and under STREX on a 4-core CMP, and compare instruction/data miss
// rates and throughput — the paper's headline result in ~30 lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"strex"
)

func main() {
	wl, err := strex.TPCC(strex.TPCCConfig{Warehouses: 1, Txns: 120, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %s, %d transactions, %d M instructions\n",
		wl.Name(), wl.Txns(), wl.Instrs()/1e6)
	fmt.Printf("mean instruction footprint: %.1f x 32KB L1-I units\n\n", wl.FootprintUnits())

	cfg := strex.DefaultConfig(4)
	base, err := strex.Run(cfg, wl, strex.SchedBaseline)
	if err != nil {
		log.Fatal(err)
	}
	fast, err := strex.Run(cfg, wl, strex.SchedSTREX)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-10s %10s %10s %14s %10s\n", "scheduler", "I-MPKI", "D-MPKI", "txn/Mcycle", "switches")
	for _, r := range []strex.Result{base, fast} {
		fmt.Printf("%-10s %10.2f %10.2f %14.2f %10d\n",
			r.Scheduler, r.IMPKI, r.DMPKI, r.ThroughputTPM, r.Switches)
	}
	fmt.Printf("\nSTREX cuts L1-I misses by %.0f%% and lifts throughput by %.0f%%\n",
		(1-fast.IMPKI/base.IMPKI)*100,
		(fast.ThroughputTPM/base.ThroughputTPM-1)*100)
	fmt.Printf("hardware cost: %.1f bytes per core (PIF needs ~40KB)\n",
		strex.HardwareCostBytes(false))
}
