// Consolidation: the paper's motivating deployment scenario (Section 1).
// A data center consolidates VMs, so an OLTP tenant may get anywhere from
// 2 to 16 cores. SLICC needs enough aggregate L1-I capacity to spread a
// transaction's footprint across cores; below that it thrashes. STREX is
// insensitive to the core count; the hybrid profiles the footprint
// (FPTable) and picks whichever wins for the cores it actually has.
//
//	go run ./examples/consolidation
package main

import (
	"fmt"
	"log"

	"strex"
)

func main() {
	wl, err := strex.TPCE(strex.TPCEConfig{Txns: 160, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tenant workload: %s, footprint %.1f L1-I units\n",
		wl.Name(), wl.FootprintUnits())
	fmt.Println("(hybrid rule: use SLICC when cores >= ceil(avg footprint), else STREX)")
	fmt.Println()
	fmt.Printf("%-6s %12s %12s %12s %16s\n", "cores", "STREX", "SLICC", "hybrid", "hybrid picked")

	for _, cores := range []int{2, 4, 8, 16} {
		cfg := strex.DefaultConfig(cores)
		s, err := strex.Run(cfg, wl, strex.SchedSTREX)
		if err != nil {
			log.Fatal(err)
		}
		sl, err := strex.Run(cfg, wl, strex.SchedSLICC)
		if err != nil {
			log.Fatal(err)
		}
		h, err := strex.Run(cfg, wl, strex.SchedHybrid)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6d %12.2f %12.2f %12.2f %16s\n",
			cores, s.ThroughputTPM, sl.ThroughputTPM, h.ThroughputTPM, h.Scheduler)
	}
	fmt.Println("\nthroughput in txn/Mcycle (steady state); higher is better")
}
