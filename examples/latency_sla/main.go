// Latency SLA tuning: STREX trades transaction latency for throughput
// through the team-size parameter, like the request batch size in
// VoltDB that the paper cites (Section 5.4). This example sweeps the
// team size and reports mean and tail latency next to throughput, then
// picks the largest team that still meets a latency budget.
//
//	go run ./examples/latency_sla
package main

import (
	"fmt"
	"log"
	"sort"

	"strex"
)

// The budget covers queue + service time for the whole offered batch;
// larger teams raise the tail through batching delay (paper Figure 7).
const latencyBudgetMcyc = 45.0 // SLA: p95 latency under 45 M cycles

func main() {
	wl, err := strex.TPCC(strex.TPCCConfig{Warehouses: 10, Txns: 160, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %s, %d txns; SLA: p95 < %.0f Mcycles\n\n",
		wl.Name(), wl.Txns(), latencyBudgetMcyc)
	fmt.Printf("%-10s %12s %12s %12s\n", "team size", "txn/Mcycle", "mean Mcyc", "p95 Mcyc")

	bestTeam, bestTPM := 0, 0.0
	for _, team := range []int{2, 4, 8, 10, 16, 20} {
		cfg := strex.DefaultConfig(4)
		cfg.TeamSize = team
		res, err := strex.Run(cfg, wl, strex.SchedSTREX)
		if err != nil {
			log.Fatal(err)
		}
		p95 := percentile(res.Latencies, 0.95) / 1e6
		fmt.Printf("%-10d %12.2f %12.2f %12.2f\n",
			team, res.ThroughputTPM, res.MeanLatency/1e6, p95)
		if p95 <= latencyBudgetMcyc && res.ThroughputTPM > bestTPM {
			bestTeam, bestTPM = team, res.ThroughputTPM
		}
	}
	if bestTeam == 0 {
		fmt.Println("\nno team size meets the SLA; fall back to baseline execution")
		return
	}
	fmt.Printf("\npick team size %d: %.2f txn/Mcycle within the latency budget\n", bestTeam, bestTPM)
}

func percentile(latencies []uint64, q float64) float64 {
	if len(latencies) == 0 {
		return 0
	}
	s := append([]uint64(nil), latencies...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(q * float64(len(s)-1))
	return float64(s[idx])
}
