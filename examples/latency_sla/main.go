// Latency SLA tuning: STREX trades transaction latency for throughput
// through the team-size parameter, like the request batch size in
// VoltDB that the paper cites (Section 5.4). This example sweeps the
// team size and reports mean and tail latency next to throughput,
// picks the largest team that still meets a latency budget, then
// sweeps offered load open-loop at that team size to find how far the
// machine can be pushed before the sojourn tail blows the same budget.
//
//	go run ./examples/latency_sla
package main

import (
	"fmt"
	"log"

	"strex"
)

// The budget covers queue + service time for the whole offered batch;
// larger teams raise the tail through batching delay (paper Figure 7).
const latencyBudgetMcyc = 45.0 // SLA: p95 latency under 45 M cycles

func main() {
	wl, err := strex.TPCC(strex.TPCCConfig{Warehouses: 10, Txns: 160, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %s, %d txns; SLA: p95 < %.0f Mcycles\n\n",
		wl.Name(), wl.Txns(), latencyBudgetMcyc)
	fmt.Printf("%-10s %12s %12s %12s\n", "team size", "txn/Mcycle", "mean Mcyc", "p95 Mcyc")

	bestTeam, bestTPM := 0, 0.0
	for _, team := range []int{2, 4, 8, 10, 16, 20} {
		cfg := strex.DefaultConfig(4)
		cfg.TeamSize = team
		res, err := strex.Run(cfg, wl, strex.SchedSTREX)
		if err != nil {
			log.Fatal(err)
		}
		// The shared exact-quantile rule (internal/stats.Quantile) —
		// the same statistic the open-loop summaries report.
		p95 := strex.LatencyQuantile(res.Latencies, 0.95) / 1e6
		fmt.Printf("%-10d %12.2f %12.2f %12.2f\n",
			team, res.ThroughputTPM, res.MeanLatency/1e6, p95)
		if p95 <= latencyBudgetMcyc && res.ThroughputTPM > bestTPM {
			bestTeam, bestTPM = team, res.ThroughputTPM
		}
	}
	if bestTeam == 0 {
		fmt.Println("\nno team size meets the SLA; fall back to baseline execution")
		return
	}
	fmt.Printf("\npick team size %d: %.2f txn/Mcycle within the latency budget\n", bestTeam, bestTPM)

	// Part two: hold the chosen team size and sweep offered load as a
	// fraction of the measured closed-loop capacity. Closed-loop
	// latency answers "how long does a batch take"; an open-loop client
	// cares about sojourn time (arrival to completion) under a given
	// arrival rate — which degrades gracefully until the machine
	// saturates, then the queue grows with the horizon.
	fmt.Printf("\noffered-load sweep (Poisson arrivals, team size %d):\n\n", bestTeam)
	fmt.Printf("%-10s %12s %12s %14s %6s\n", "load", "offered/Mc", "tput/Mc", "sojourn p99 Mc", "SLA")
	cfg := strex.DefaultConfig(4)
	cfg.TeamSize = bestTeam
	for _, frac := range []float64{0.3, 0.5, 0.7, 0.9, 1.1} {
		rate := frac * bestTPM
		tenants := []strex.TenantSpec{{
			Workload: "TPC-C-10",
			Options:  strex.WorkloadOptions{Txns: 160, Seed: 1},
			Arrival:  strex.ArrivalSpec{Process: "poisson", Rate: rate, Seed: 7},
		}}
		res, err := strex.RunOpenLoop(cfg, tenants, strex.SchedSTREX)
		if err != nil {
			log.Fatal(err)
		}
		// Sojourn quantiles are in cycles; the SLA is in megacycles.
		// Holding the open-loop tail (p99) to the closed-loop p95
		// budget is deliberately conservative.
		p99 := res.Overall.Sojourn.P99 / 1e6
		verdict := "ok"
		if p99 > latencyBudgetMcyc {
			verdict = "MISS"
		}
		fmt.Printf("%-10s %12.3f %12.3f %14.2f %6s\n",
			fmt.Sprintf("%.0f%%", frac*100), rate, res.ThroughputTPM, p99, verdict)
	}
	fmt.Println("\nrule of thumb: the highest load whose sojourn tail stays under budget is the admission ceiling")
}
