// Replacement policies: OLTP instruction streams defeat LRU the same way
// streaming workloads do, so anti-thrash policies (BIP, BRRIP) help the
// baseline — but scheduling beats replacement: STREX with plain LRU
// removes more misses than any policy alone, and pairing STREX with the
// anti-thrash policies backfires (they fight the phase mechanism).
// This reproduces the paper's Figure 9 through the public API.
//
//	go run ./examples/replacement
package main

import (
	"fmt"
	"log"

	"strex"
)

func main() {
	wl, err := strex.TPCC(strex.TPCCConfig{Warehouses: 10, Txns: 120, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %s on 8 cores\n\n", wl.Name())
	fmt.Printf("%-14s %10s\n", "config", "I-MPKI")

	for _, pol := range []string{"LRU", "LIP", "BIP", "SRRIP", "BRRIP"} {
		cfg := strex.DefaultConfig(8)
		cfg.Policy = pol
		res, err := strex.Run(cfg, wl, strex.SchedBaseline)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %10.2f\n", pol, res.IMPKI)
	}
	for _, pol := range []string{"LRU", "BIP", "BRRIP"} {
		cfg := strex.DefaultConfig(8)
		cfg.Policy = pol
		res, err := strex.Run(cfg, wl, strex.SchedSTREX)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %10.2f\n", "STREX+"+pol, res.IMPKI)
	}
	fmt.Println("\nscheduling beats replacement: compare STREX+LRU against the best policy row")
}
