package strex

import (
	"fmt"
	"strings"

	"strex/internal/bench"
	"strex/internal/cache"
	"strex/internal/core"
	"strex/internal/obs"
	"strex/internal/prefetch"
	"strex/internal/runcache"
	"strex/internal/runner"
	"strex/internal/sched"
	"strex/internal/sim"
	"strex/internal/stats"
	"strex/internal/synth"
	"strex/internal/tracefile"
	"strex/internal/workload"
)

// SchedulerKind selects a transaction scheduler.
type SchedulerKind int

const (
	// SchedBaseline is conventional execution: a transaction runs to
	// completion on whichever core picked it up.
	SchedBaseline SchedulerKind = iota
	// SchedSTREX is the paper's stratified execution.
	SchedSTREX
	// SchedSLICC is the migration-based prior technique.
	SchedSLICC
	// SchedHybrid profiles footprints and picks STREX or SLICC.
	SchedHybrid
)

// String returns the scheduler's paper label.
func (k SchedulerKind) String() string {
	switch k {
	case SchedBaseline:
		return "Base"
	case SchedSTREX:
		return "STREX"
	case SchedSLICC:
		return "SLICC"
	case SchedHybrid:
		return "STREX+SLICC"
	}
	return fmt.Sprintf("SchedulerKind(%d)", int(k))
}

// ParseScheduler resolves a scheduler name to its SchedulerKind. It
// accepts the CLI spellings (base, baseline, strex, slicc, hybrid) and
// the paper labels String returns, case-insensitively. Both binaries
// parse -sched flags through this one function.
func ParseScheduler(name string) (SchedulerKind, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "base", "baseline":
		return SchedBaseline, nil
	case "strex":
		return SchedSTREX, nil
	case "slicc":
		return SchedSLICC, nil
	case "hybrid", "strex+slicc":
		return SchedHybrid, nil
	}
	return 0, fmt.Errorf("strex: unknown scheduler %q (base, strex, slicc, hybrid)", name)
}

// Config describes the simulated system. Zero values fall back to the
// paper's Table 2 configuration via DefaultConfig.
type Config struct {
	Cores      int
	L1IKB      int    // L1 instruction cache capacity (default 32)
	L1DKB      int    // L1 data cache capacity (default 32)
	L1Ways     int    // associativity (default 8)
	Policy     string // L1-I replacement policy: LRU, LIP, BIP, SRRIP, BRRIP
	Prefetcher string // "", "next-line" or "pif" (PIF upper bound)
	TeamSize   int    // STREX team size (default 10)
	PoolWindow int    // scheduler-visible pending transactions (default 30)
	// Seed drives the simulator's tie-breaking randomness. Like every
	// other Config field, the zero value means "use the default": Seed 0
	// silently aliases to the default seed 1 and is NOT a distinct
	// seed. Callers that need a full-range seed space (e.g. per-run
	// seeds in a grid) should produce seeds with DeriveSeed, which
	// never returns 0. Workload generation seeds are separate
	// (WorkloadOptions.Seed) and are used verbatim.
	Seed uint64
}

// DeriveSeed maps a master seed and a run index to a well-distributed
// per-run seed (re-exported from the run executor). It is pure, so a
// grid seeded with DeriveSeed(master, i) is reproducible regardless of
// execution order, and it never returns 0 — the value Config.Seed and
// WorkloadOptions-free builders treat as "use the default".
func DeriveSeed(master uint64, index int) uint64 { return runner.DeriveSeed(master, index) }

// DefaultConfig returns the paper's system for n cores.
func DefaultConfig(n int) Config {
	return Config{Cores: n, L1IKB: 32, L1DKB: 32, L1Ways: 8, Policy: "LRU", TeamSize: 10, PoolWindow: 30, Seed: 1}
}

func (c Config) build() (sim.Config, error) {
	if c.Cores <= 0 {
		return sim.Config{}, fmt.Errorf("strex: Cores must be positive, got %d", c.Cores)
	}
	cfg := sim.DefaultConfig(c.Cores)
	if c.L1IKB > 0 {
		cfg.L1IKB = c.L1IKB
	}
	if c.L1DKB > 0 {
		cfg.L1DKB = c.L1DKB
	}
	if c.L1Ways > 0 {
		cfg.L1Ways = c.L1Ways
	}
	if c.PoolWindow > 0 {
		cfg.PoolWindow = c.PoolWindow
	}
	if c.Seed != 0 {
		cfg.Seed = c.Seed
	}
	if c.Policy != "" {
		pol, err := cache.ParsePolicy(c.Policy)
		if err != nil {
			return sim.Config{}, err
		}
		cfg.IPolicy = pol
	}
	switch c.Prefetcher {
	case "":
		cfg.Prefetcher = prefetch.None
	case "next-line":
		cfg.Prefetcher = prefetch.NextLine
	case "pif":
		cfg.Prefetcher = prefetch.PIF
	default:
		return sim.Config{}, fmt.Errorf("strex: unknown prefetcher %q", c.Prefetcher)
	}
	return cfg, nil
}

// Workload is a generated, replayable transaction set.
type Workload struct {
	set  *workload.Set
	prov tracefile.Provenance
	// syn holds the raw synth parameters when this is a generated Synth
	// workload — the structural form of prov.Extra, needed to describe
	// the set to sharding workers (see sharding.go). Nil for fixed
	// benchmarks and trace-file loads.
	syn *synth.Params
}

// Name returns the workload label (e.g. "TPC-C-10").
func (w *Workload) Name() string { return w.set.Name }

// Txns returns the number of transactions.
func (w *Workload) Txns() int { return len(w.set.Txns) }

// Instrs returns the total instruction count.
func (w *Workload) Instrs() uint64 { return w.set.Instrs() }

// Types returns the transaction type names.
func (w *Workload) Types() []string { return append([]string(nil), w.set.Types...) }

// FootprintUnits returns the average per-type instruction footprint in
// 32KB L1-I units (the paper's Table 3 metric), as the hybrid's FPTable
// profiling would measure it.
func (w *Workload) FootprintUnits() float64 {
	return core.MeasureFPTable(w.set, 4).AverageUnits()
}

// WorkloadInfo describes one registered workload (see Workloads).
type WorkloadInfo struct {
	// Name is the canonical registry name, accepted by BuildWorkload.
	Name string
	// Aliases are alternative accepted spellings (CLI-friendly).
	Aliases []string
	// Description is a one-line summary.
	Description string
	// TxnTypes lists the transaction type labels.
	TxnTypes []string
	// ScaleHint documents what WorkloadOptions.Scale means here.
	ScaleHint string
	// STREXWins is the paper-model expectation: whether the per-type
	// instruction footprint exceeds one L1-I, the precondition for
	// stratified execution to pay off.
	STREXWins bool
}

// Workloads lists every registered workload: the paper's originals
// (TPC-C-1, TPC-C-10, TPC-E, MapReduce), the extended OLTP family
// (TATP, Voter, SmallBank) and the Synth footprint generator.
func Workloads() []WorkloadInfo {
	infos := bench.Workloads()
	out := make([]WorkloadInfo, len(infos))
	for i, in := range infos {
		out[i] = WorkloadInfo{
			Name:        in.Name,
			Aliases:     in.Aliases,
			Description: in.Description,
			TxnTypes:    in.TxnTypes,
			ScaleHint:   in.ScaleHint,
			STREXWins:   in.STREXWins,
		}
	}
	return out
}

// WorkloadOptions parameterizes BuildWorkload. Only Txns is required.
type WorkloadOptions struct {
	// Txns is the number of transactions to generate (required).
	Txns int
	// Seed drives workload generation and is used verbatim — 0 is a
	// valid seed distinct from 1 (unlike Config.Seed, which treats 0 as
	// "use the default").
	Seed uint64
	// Scale is the benchmark-specific size knob; 0 selects the
	// workload's default (see WorkloadInfo.ScaleHint).
	Scale int
	// SynthFootprintUnits, SynthTypes and SynthDataReuse dial the
	// "Synth" workload (ignored by the fixed benchmarks); zero values
	// select synth's defaults (4 units, 4 types, 0.5 reuse).
	SynthFootprintUnits float64
	SynthTypes          int
	SynthDataReuse      float64
	// CacheDir enables the on-disk workload cache (see docs/TRACES.md):
	// generation is skipped when a trace artifact for the exact
	// (workload, seed, scale, txns, synth knobs) already exists, and a
	// fresh generation is stored for next time. Empty disables caching.
	CacheDir string
	// NoCache disables the cache even when CacheDir is set (the CLI's
	// -no-cache passthrough).
	NoCache bool
}

// BuildWorkload generates a workload by registry name (or alias) — the
// single entry point the CLIs, the experiment drivers and library users
// share. The returned workload is replayable: running it under two
// schedulers compares them on identical transactions. With
// WorkloadOptions.CacheDir set, generation is memoized on disk —
// cached and fresh builds are byte-identical because set content is a
// pure function of the options.
func BuildWorkload(name string, opts WorkloadOptions) (*Workload, error) {
	sp := synth.Params{
		FootprintUnits: opts.SynthFootprintUnits,
		Types:          opts.SynthTypes,
		DataReuse:      opts.SynthDataReuse,
	}
	canonical := name
	info, known := bench.Lookup(name)
	if known {
		canonical = info.Name // aliases share artifacts and provenance
	}
	var extra string
	var syn *synth.Params
	if canonical == "Synth" {
		extra = fmt.Sprintf("%#v", sp) // synth knobs determine content too
		p := sp
		syn = &p
	}
	var rc *runcache.Cache
	var key runcache.SetKey
	if known && opts.CacheDir != "" && !opts.NoCache {
		var err error
		if rc, err = runcache.Open(opts.CacheDir); err != nil {
			return nil, err
		}
		key = runcache.SetKey{
			Workload: canonical,
			Seed:     opts.Seed,
			Scale:    opts.Scale,
			Txns:     opts.Txns,
			TypeID:   -1,
			Extra:    extra,
		}
		if set, ok := rc.GetSet(key); ok {
			return &Workload{set: set, prov: provenance(canonical, extra, opts), syn: syn}, nil
		}
	}
	set, err := bench.BuildSet(name, opts.Txns, bench.Options{
		Seed:  opts.Seed,
		Scale: opts.Scale,
		Synth: sp,
	})
	if err != nil {
		return nil, err
	}
	if rc != nil {
		// Store failures degrade to "regenerate next time" (the workload
		// in hand is complete and valid), matching the runner's policy
		// for result stores.
		_ = rc.PutSet(key, set)
	}
	return &Workload{set: set, prov: provenance(canonical, extra, opts), syn: syn}, nil
}

func provenance(canonical, extra string, opts WorkloadOptions) tracefile.Provenance {
	return tracefile.Provenance{
		Workload: canonical, Seed: opts.Seed, Scale: opts.Scale,
		TypeID: -1, // the facade only builds mixed streams
		Extra:  extra,
	}
}

// SaveTrace writes the workload to path as a versioned, checksummed
// .strextrace artifact (see docs/TRACES.md for the format). The file
// replays anywhere via LoadWorkload or strexsim -load-trace.
func (w *Workload) SaveTrace(path string) error {
	return tracefile.Save(path, w.set, w.prov)
}

// LoadWorkload reads a .strextrace artifact previously written by
// SaveTrace, tracegen -o, or the run cache. The checksum and structural
// invariants are verified before any trace reaches a simulator.
func LoadWorkload(path string) (*Workload, error) {
	set, meta, err := tracefile.Load(path)
	if err != nil {
		return nil, err
	}
	return &Workload{set: set, prov: meta.Provenance}, nil
}

// TPCCConfig parameterizes a TPC-C workload.
type TPCCConfig struct {
	Warehouses int // 1 and 10 reproduce the paper's TPC-C-1 / TPC-C-10
	Txns       int
	Seed       uint64
}

// TPCC builds a TPC-C workload (shorthand for BuildWorkload with
// Scale=Warehouses).
func TPCC(cfg TPCCConfig) (*Workload, error) {
	if cfg.Warehouses <= 0 || cfg.Txns <= 0 {
		return nil, fmt.Errorf("strex: TPCC needs positive Warehouses and Txns, got %+v", cfg)
	}
	return BuildWorkload("TPC-C-1", WorkloadOptions{Txns: cfg.Txns, Seed: cfg.Seed, Scale: cfg.Warehouses})
}

// TPCEConfig parameterizes a TPC-E workload.
type TPCEConfig struct {
	Txns int
	Seed uint64
}

// TPCE builds a TPC-E workload (shorthand for BuildWorkload).
func TPCE(cfg TPCEConfig) (*Workload, error) {
	if cfg.Txns <= 0 {
		return nil, fmt.Errorf("strex: TPCE needs positive Txns")
	}
	return BuildWorkload("TPC-E", WorkloadOptions{Txns: cfg.Txns, Seed: cfg.Seed})
}

// MapReduceConfig parameterizes the MapReduce control workload.
type MapReduceConfig struct {
	Tasks int
	Seed  uint64
}

// MapReduce builds the small-instruction-footprint control workload
// (shorthand for BuildWorkload).
func MapReduce(cfg MapReduceConfig) (*Workload, error) {
	if cfg.Tasks <= 0 {
		return nil, fmt.Errorf("strex: MapReduce needs positive Tasks")
	}
	return BuildWorkload("MapReduce", WorkloadOptions{Txns: cfg.Tasks, Seed: cfg.Seed})
}

// Result summarizes one simulation run.
type Result struct {
	Scheduler  string
	Cycles     uint64 // makespan
	BusyCycles uint64 // execution cycles summed over cores
	Instrs     uint64
	IMPKI      float64
	DMPKI      float64
	Switches   uint64
	Migrations uint64

	// ThroughputTPM is transactions per mega-cycle of per-core busy time
	// (the steady-state measure used in the paper's Figure 6).
	ThroughputTPM float64
	// MeanLatency is the average queue-to-completion latency in cycles.
	MeanLatency float64
	// Latencies holds per-transaction latencies in cycles, in workload
	// order, for distribution analysis (Figure 7).
	Latencies []uint64
}

// scheduler builds a fresh scheduler instance for one run of w under
// this configuration.
func (c Config) scheduler(kind SchedulerKind, w *Workload, cores int) (sim.Scheduler, error) {
	switch kind {
	case SchedBaseline:
		return sched.NewBaseline(), nil
	case SchedSTREX:
		ts := c.TeamSize
		if ts <= 0 {
			ts = 10
		}
		win := c.PoolWindow
		if win <= 0 {
			win = 30
		}
		return sched.NewStrexSized(core.FormationConfig{Window: win, TeamSize: ts}), nil
	case SchedSLICC:
		return sched.NewSlicc(), nil
	case SchedHybrid:
		return sched.NewHybrid(w.set, cores, 3), nil
	}
	return nil, fmt.Errorf("strex: unknown scheduler %v", kind)
}

func toResult(name string, res sim.Result, txns, cores int) Result {
	out := Result{
		Scheduler:     name,
		Cycles:        res.Stats.Cycles,
		BusyCycles:    res.Stats.BusyCycles,
		Instrs:        res.Stats.Instrs,
		IMPKI:         res.Stats.IMPKI(),
		DMPKI:         res.Stats.DMPKI(),
		Switches:      res.Stats.Switches,
		Migrations:    res.Stats.Migrations,
		ThroughputTPM: res.Stats.SteadyThroughput(txns, cores),
	}
	var sum float64
	for _, th := range res.Threads {
		out.Latencies = append(out.Latencies, th.Latency())
		sum += float64(th.Latency())
	}
	if len(out.Latencies) > 0 {
		out.MeanLatency = sum / float64(len(out.Latencies))
	}
	return out
}

// Run executes the workload under the chosen scheduler and returns the
// aggregated result. The workload is replayed from the start each call,
// so comparing schedulers on the same *Workload is exact.
func Run(cfg Config, w *Workload, kind SchedulerKind) (Result, error) {
	results, err := RunMany(w, []RunSpec{{Config: cfg, Sched: kind}}, 1, nil)
	if err != nil {
		return Result{}, err
	}
	return results[0], nil
}

// RunTraced is Run with a run-timeline tracer attached: the engine
// records one span per scheduling quantum and per hit-run/seg-run
// absorption stretch into a tracer holding up to events entries (<= 0
// selects the default capacity). The tracer is returned alongside the
// result; export it with Timeline.WriteChrome (Chrome trace-event JSON,
// loadable in Perfetto — see docs/OBSERVABILITY.md). Tracing is purely
// observational: the Result is identical to Run's.
func RunTraced(cfg Config, w *Workload, kind SchedulerKind, events int) (Result, *obs.Timeline, error) {
	if w == nil || w.set == nil || len(w.set.Txns) == 0 {
		return Result{}, nil, fmt.Errorf("strex: RunTraced needs a non-empty workload")
	}
	simCfg, err := cfg.build()
	if err != nil {
		return Result{}, nil, err
	}
	s, err := cfg.scheduler(kind, w, simCfg.Cores)
	if err != nil {
		return Result{}, nil, err
	}
	tl := obs.NewTimeline(events)
	tl.SetMeta(w.prov.Workload, s.Name(), simCfg.Cores)
	eng := sim.New(simCfg, w.set, s)
	eng.SetTimeline(tl)
	res := eng.Run().Detach()
	return toResult(s.Name(), res, len(w.set.Txns), simCfg.Cores), tl, nil
}

// Timeline re-exports the obs tracer type so facade callers need not
// import the internal package.
type Timeline = obs.Timeline

// RunSpec pairs a system configuration with a scheduler selection for
// batch execution.
type RunSpec struct {
	Config Config
	Sched  SchedulerKind
}

// RunMany executes the given runs on up to parallel concurrent worker
// goroutines (parallel <= 0 selects GOMAXPROCS) and returns results in
// spec order. Every run replays w from the start with its own engine and
// scheduler, and runs are deterministic, so the results are bit-for-bit
// identical to calling Run in a loop — only the wall-clock changes.
// onProgress, if non-nil, is invoked after each completed run.
// RunMany is the in-process special case of RunManySharded (see
// sharding.go).
func RunMany(w *Workload, specs []RunSpec, parallel int, onProgress func(done, total int)) ([]Result, error) {
	return RunManySharded(w, specs, GridOptions{Parallel: parallel, OnProgress: onProgress})
}

// Summary describes one metric across the replicates of a
// RunReplicated call: sample size, central tendency, spread, and the
// half-width of the two-sided 95% confidence interval on the mean
// (Student-t at N-1 degrees of freedom — see docs/STATS.md). The
// interval is [Mean-CI95, Mean+CI95]; N=1 yields a zero-width interval.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64
	Min    float64
	Max    float64
	Median float64
	CI95   float64
}

func summaryOf(s stats.Summary) Summary {
	return Summary{N: s.N, Mean: s.Mean, Stddev: s.Stddev, Min: s.Min, Max: s.Max, Median: s.Median, CI95: s.CI95}
}

// Format renders "mean ±ci95" with the given precision — the same
// aggregate-cell format the experiment suite's tables use.
func (s Summary) Format(prec int) string {
	return fmt.Sprintf("%.*f ±%.*f", prec, s.Mean, prec, s.CI95)
}

// ReplicatedResult bundles the per-seed results of a replicated run
// with their aggregate summaries.
type ReplicatedResult struct {
	// Results holds one Result per replicate, in replicate order.
	// Replicate 0 ran at the verbatim seeds and is byte-identical to a
	// plain Run with the same arguments; later replicates ran fresh
	// trace draws at derived seeds.
	Results []Result
	// Seeds holds each replicate's workload-generation seed (the
	// config seed is derived in parallel from Config.Seed).
	Seeds []uint64
	// Aggregates over the replicates, one per headline metric.
	IMPKI, DMPKI, Throughput, MeanLatency Summary
}

// RunReplicated builds the named workload `seeds` times — replicate 0
// at WorkloadOptions.Seed verbatim, later replicates at
// DeriveSeed-derived seeds, i.e. statistically independent trace draws
// — and runs each draw under the chosen scheduler, fanning the runs
// over up to `parallel` workers (<= 0 selects GOMAXPROCS). The returned
// summaries carry mean ±95% CI per metric, which is what makes a
// "scheduler A beats scheduler B" claim defensible rather than a
// single-seed point estimate. With WorkloadOptions.CacheDir set, each
// replicate's trace is individually cached on disk. seeds < 1 is
// treated as 1 (the degenerate single-run case, zero-width intervals).
func RunReplicated(cfg Config, name string, wopts WorkloadOptions, kind SchedulerKind, seeds, parallel int) (*ReplicatedResult, error) {
	draws, err := ReplicateWorkloads(name, wopts, seeds)
	if err != nil {
		return nil, err
	}
	return RunDraws(cfg, draws, kind, parallel)
}

// ReplicateWorkloads builds the N per-replicate trace draws of a
// registered workload: draw 0 at WorkloadOptions.Seed verbatim, later
// draws at DeriveSeed-derived seeds. Workload content is independent
// of any simulator configuration, so a grid of (cores, scheduler)
// cells builds its draws once here and runs every cell on them via
// RunDraws — that is exactly how strexsim's -seeds grid avoids
// regenerating N workloads per cell.
func ReplicateWorkloads(name string, wopts WorkloadOptions, seeds int) ([]*Workload, error) {
	if seeds < 1 {
		seeds = 1
	}
	draws := make([]*Workload, seeds)
	for rep := range draws {
		ropts := wopts
		ropts.Seed = runner.ReplicateSeed(wopts.Seed, rep)
		w, err := BuildWorkload(name, ropts)
		if err != nil {
			return nil, err
		}
		if len(w.set.Txns) == 0 {
			return nil, fmt.Errorf("strex: replicated runs need a non-empty workload")
		}
		draws[rep] = w
	}
	return draws, nil
}

// RunDraws runs one (config, scheduler) cell over pre-built replicate
// draws (from ReplicateWorkloads) and aggregates the results. Draw
// index doubles as replicate index: the config seed of draw r is
// derived by the same ReplicateSeed rule the draws' workload seeds
// used, so RunDraws(cfg, ReplicateWorkloads(...)) ≡ RunReplicated.
func RunDraws(cfg Config, draws []*Workload, kind SchedulerKind, parallel int) (*ReplicatedResult, error) {
	out, err := RunManyDraws(draws, []RunSpec{{Config: cfg, Sched: kind}}, parallel, nil)
	if err != nil {
		return nil, err
	}
	return out[0], nil
}

// RunManyDraws runs a whole grid of (config, scheduler) cells over the
// same replicate draws, fanning every cell's every replicate over one
// worker pool — all cells are submitted before any is collected, so a
// 16-run grid at -parallel 16 keeps 16 simulations in flight, exactly
// like the non-replicated RunMany. Results come back in spec order.
// onProgress, if non-nil, is invoked after each completed replicate
// with (done, total) counted across the whole grid. RunManyDraws is
// the in-process special case of RunManyDrawsSharded (see sharding.go).
func RunManyDraws(draws []*Workload, specs []RunSpec, parallel int, onProgress func(done, total int)) ([]*ReplicatedResult, error) {
	return RunManyDrawsSharded(draws, specs, GridOptions{Parallel: parallel, OnProgress: onProgress})
}

// HardwareCostBytes returns STREX's per-core storage cost in bytes
// (Table 4): 890.5 for STREX alone, 1166.5 with the hybrid's SLICC
// cache-monitor unit.
func HardwareCostBytes(includeHybrid bool) float64 {
	h := core.DefaultHardwareCost()
	h.IncludeHybrid = includeHybrid
	return h.TotalBytes()
}
